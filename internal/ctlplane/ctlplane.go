// Package ctlplane closes Scap's overload loop: a feedback controller that
// watches the live signals the pipeline already exports — memory and arena
// occupancy plus PPL state from internal/mem, the ring→worker latency
// histogram and drops-by-cause table from internal/metrics, per-priority
// byte shares and heavy hitters from internal/sketch — and drives the
// degradation knobs the paper leaves static: the effective stream cutoff,
// the sketch→NIC drop-filter budget, and the PPL watermark ladder.
//
// The controller is deliberately boring: a three-mode state machine (calm →
// pressure → recovery) with hysteresis on entry/exit and a cooldown between
// actuations, multiplicative tighten and relax on the cutoff, and every
// decision written to the flight recorder with the evidence that triggered
// it. All inputs and outputs are injected as function fields, so unit tests
// script signal sequences against a fake clock and observe exact actuation
// sequences; production wiring lives in the scap package.
//
// The ctlplane package is part of the audited public API surface: scaplint's
// exporteddoc analyzer requires a doc comment on every exported symbol.
//
//scap:publicapi
package ctlplane

import (
	"sync"
	"sync/atomic"
	"time"

	"scap/internal/metrics"
)

// Config tunes the controller. The zero value of every numeric field means
// "use the default"; Enabled is the master switch (a disabled controller is
// never constructed by the scap package).
type Config struct {
	// Enabled turns the controller on. Default false: all knobs stay at
	// their configured static values.
	Enabled bool
	// Interval is the control loop period. Default 50ms — matching the
	// engines' timer tick, so a decision lands at most one tick behind the
	// signal that justified it.
	Interval time.Duration
	// EnterFraction is the memory-usage fraction (of the larger of byte
	// budget and arena occupancy) at or above which the controller enters
	// pressure mode and starts tightening. Default 0.85. Must exceed
	// ExitFraction; the gap is the hysteresis band.
	EnterFraction float64
	// ExitFraction is the fraction at or below which pressure is considered
	// released. Default 0.70.
	ExitFraction float64
	// SevereFraction is the usage fraction at or above which a tighten skips
	// the multiplicative staircase and clamps straight to CutoffFloor — by
	// the time usage is this high, walking down one step per cooldown loses
	// the race against a line-rate burst. Default 0.95.
	SevereFraction float64
	// Cooldown is the minimum time between successive cutoff actuations
	// (tighten or relax), so one episode produces a staircase, not a flap.
	// Default 500ms.
	Cooldown time.Duration
	// HoldTicks is how many consecutive ticks the usage must sit at or
	// below ExitFraction before recovery begins. Default 3.
	HoldTicks int
	// CutoffStart is the dynamic cutoff installed by the first tighten of
	// an episode when no clamp is active, in bytes. Default 256 KiB.
	CutoffStart int64
	// CutoffFloor is the lowest cutoff the controller will ever impose, in
	// bytes. Default 16 KiB (one default chunk): every stream still
	// delivers its first chunk, so analysis never goes fully blind.
	CutoffFloor int64
	// TightenFactor multiplies the cutoff on each tighten (0 < f < 1).
	// Default 0.5.
	TightenFactor float64
	// RelaxDischargeBps gates recovery on the clamp's own effect: an active
	// clamp suppresses the memory signal that raised it, so low usage alone
	// does not mean the overload is over. While the engines are discarding
	// cutoff bytes faster than this rate (bytes/sec), the controller treats
	// the episode as still live and will not count toward exit or relax.
	// Default 1 MiB/s; negative disables the gate. Ignored when the
	// CutoffBytes signal is not wired.
	RelaxDischargeBps int64
	// RelaxFactor multiplies the cutoff on each relax (> 1). Default 2.
	RelaxFactor float64
	// FDIRBudget is the per-core cap on sketch-nominated NIC drop filters
	// while under pressure. Outside an episode the controller holds the
	// budget at zero — hardware drops blind the host to the flow entirely,
	// so they are reserved for overload. Zero means the default (32);
	// negative means unlimited during episodes.
	FDIRBudget int
	// FixedWatermarks, when true, leaves the PPL watermark ladder alone.
	// Default false: under pressure the controller respaces the ladder from
	// the sketch's per-priority byte shares (see retargetWatermarks) and
	// restores the default spacing when the episode ends.
	FixedWatermarks bool
	// Now is the controller's clock, unix nanoseconds. Nil uses the wall
	// clock; tests inject a scripted clock.
	Now func() int64
}

// Default controller parameters; see the corresponding Config fields.
const (
	DefaultInterval          = 50 * time.Millisecond
	DefaultEnterFraction     = 0.85
	DefaultExitFraction      = 0.70
	DefaultSevereFraction    = 0.95
	DefaultCooldown          = 500 * time.Millisecond
	DefaultHoldTicks         = 3
	DefaultCutoffStart       = 256 << 10
	DefaultCutoffFloor       = 16 << 10
	DefaultTightenFactor     = 0.5
	DefaultRelaxFactor       = 2.0
	DefaultFDIRBudget        = 32
	DefaultRelaxDischargeBps = 1 << 20
)

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.EnterFraction <= 0 || c.EnterFraction > 1 {
		c.EnterFraction = DefaultEnterFraction
	}
	if c.ExitFraction <= 0 || c.ExitFraction >= c.EnterFraction {
		c.ExitFraction = DefaultExitFraction
		if c.ExitFraction >= c.EnterFraction {
			c.ExitFraction = c.EnterFraction * 0.8
		}
	}
	if c.SevereFraction <= 0 || c.SevereFraction > 1 {
		c.SevereFraction = DefaultSevereFraction
	}
	if c.SevereFraction < c.EnterFraction {
		c.SevereFraction = c.EnterFraction
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.HoldTicks <= 0 {
		c.HoldTicks = DefaultHoldTicks
	}
	if c.CutoffStart <= 0 {
		c.CutoffStart = DefaultCutoffStart
	}
	if c.CutoffFloor <= 0 {
		c.CutoffFloor = DefaultCutoffFloor
	}
	if c.CutoffFloor > c.CutoffStart {
		c.CutoffFloor = c.CutoffStart
	}
	if c.TightenFactor <= 0 || c.TightenFactor >= 1 {
		c.TightenFactor = DefaultTightenFactor
	}
	if c.RelaxFactor <= 1 {
		c.RelaxFactor = DefaultRelaxFactor
	}
	if c.RelaxDischargeBps == 0 {
		c.RelaxDischargeBps = DefaultRelaxDischargeBps
	}
	if c.FDIRBudget == 0 {
		c.FDIRBudget = DefaultFDIRBudget
	}
	if c.FDIRBudget < 0 {
		c.FDIRBudget = -1
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixNano() }
	}
	return c
}

// Signals are the controller's inputs, injected as functions so the
// controller never imports the packages it observes (and tests script
// arbitrary sequences). Every field must be non-nil except DropsByCause,
// PrioBytes, HeavyCount, and BaseThreshold, which may be nil when the
// corresponding subsystem is absent.
type Signals struct {
	// MemFraction returns stream-memory usage as a fraction of the byte
	// budget (mem.Manager.UsedFraction).
	MemFraction func() float64
	// ArenaFraction returns arena block occupancy (blocks in use over
	// total). Block-granular pinning can exhaust the arena before the byte
	// budget fills, so the controller reacts to the larger of the two.
	ArenaFraction func() float64
	// UnderPPL reports whether the memory manager is inside a PPL episode.
	UnderPPL func() bool
	// RingWorkerP99 returns the p99 ring→worker latency in nanoseconds,
	// from the stage histogram — the "how far behind are the workers"
	// evidence attached to every decision.
	RingWorkerP99 func() float64
	// PrioBytes returns per-priority payload byte totals summed across
	// every engine's sketch (cumulative counters; the controller diffs
	// successive reads). Nil or empty when the sketch is disabled.
	PrioBytes func() []uint64
	// HeavyCount returns how many heavy-hitter flows the sketches track,
	// recorded as evidence with budget decisions. Nil reads as zero.
	HeavyCount func() int
	// BaseThreshold returns the PPL base threshold the watermark ladder
	// starts from. Nil disables watermark retargeting.
	BaseThreshold func() float64
	// DropsByCause returns cumulative drop counters by cause (the /metrics
	// drops table); attached to decisions as evidence. May be nil.
	DropsByCause func() map[string]uint64
	// CutoffBytes returns the cumulative bytes discarded by the cutoff
	// across every engine. The controller diffs successive reads into a
	// discharge rate: while the clamp is shedding faster than
	// RelaxDischargeBps, the overload is still live no matter how calm the
	// memory signal looks (the clamp itself keeps usage low). Nil disables
	// the recovery gate.
	CutoffBytes func() uint64
}

// Actuators are the controller's outputs. SetCutoff and SetFDIRBudget fan
// out to every engine through the control queue; SetWatermarks installs a
// PPL ladder (nil restores the default); Note writes a flight record.
// Nil fields are skipped, so partial wiring is safe in tests.
type Actuators struct {
	// SetCutoff installs the engine-wide dynamic cutoff clamp in bytes;
	// a negative value removes the clamp.
	SetCutoff func(v int64)
	// SetFDIRBudget bounds sketch-nominated NIC drop filters per core;
	// negative means unlimited.
	SetFDIRBudget func(v int)
	// SetWatermarks installs an explicit PPL watermark table; nil restores
	// the default equal spacing.
	SetWatermarks func(w []float64)
	// Note records one flight-recorder entry for a control decision.
	Note func(kind metrics.FlightKind, value, aux int64)
}

// Mode is the controller's operating mode.
type Mode uint8

// Controller modes. Calm: no clamp, watching. Pressure: usage crossed
// EnterFraction; the cutoff staircase descends. Recovery: usage held below
// ExitFraction for HoldTicks; the staircase ascends until the clamp is gone.
const (
	ModeCalm Mode = iota
	ModePressure
	ModeRecovery
)

// String returns the mode's wire name.
func (m Mode) String() string {
	switch m {
	case ModeCalm:
		return "calm"
	case ModePressure:
		return "pressure"
	case ModeRecovery:
		return "recovery"
	}
	return "unknown"
}

// Decision is one recorded control action, kept in the snapshot's recent
// ring (newest last) and mirrored into the flight recorder.
type Decision struct {
	// TimeUnixNano is when the decision was taken (controller clock).
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Action names the knob movement: claim_budget, tighten, relax,
	// restore, watermarks.
	Action string `json:"action"`
	// Value is the knob's new setting (cutoff bytes, budget, or the lowest
	// watermark in per-mille).
	Value int64 `json:"value"`
	// MemPerMille is memory pressure at decision time, in thousandths.
	MemPerMille int64 `json:"mem_per_mille"`
	// P99RingWorkerNs is the ring→worker p99 latency at decision time.
	P99RingWorkerNs int64 `json:"p99_ring_worker_ns"`
	// Evidence is a short human-readable justification.
	Evidence string `json:"evidence"`
}

// maxDecisions bounds the snapshot's decision ring.
const maxDecisions = 32

// Snapshot is the controller's externally visible state, served at
// /debug/ctlplane and rendered by scaptop. Published atomically once per
// tick; readers get a consistent point-in-time view.
type Snapshot struct {
	// Enabled mirrors Config.Enabled (always true on a live controller).
	Enabled bool `json:"enabled"`
	// Mode is the current operating mode ("calm", "pressure", "recovery").
	Mode string `json:"mode"`
	// Ticks counts control-loop iterations since start.
	Ticks uint64 `json:"ticks"`
	// MemFraction and ArenaFraction are the last observed usage fractions.
	MemFraction   float64 `json:"mem_fraction"`
	ArenaFraction float64 `json:"arena_fraction"`
	// UnderPPL is the memory manager's PPL state at the last tick.
	UnderPPL bool `json:"under_ppl"`
	// P99RingWorkerNs is the last observed ring→worker p99 latency.
	P99RingWorkerNs int64 `json:"p99_ring_worker_ns"`
	// DynCutoff is the active dynamic cutoff clamp in bytes (-1 = none).
	DynCutoff int64 `json:"dyn_cutoff"`
	// DischargeBps is the rate at which the clamp is currently discarding
	// cutoff bytes, in bytes/sec. Above Config.RelaxDischargeBps it blocks
	// recovery: low memory usage with a hot clamp means the flood is still
	// arriving, not that it ended.
	DischargeBps int64 `json:"discharge_bps"`
	// FDIRBudget is the active sketch-FDIR budget (-1 = unlimited, the
	// pre-controller default; the controller holds 0 outside episodes).
	FDIRBudget int `json:"fdir_budget"`
	// Watermarks is the last ladder the controller installed; nil when the
	// default spacing is in force.
	Watermarks []float64 `json:"watermarks,omitempty"`
	// DropsByCause mirrors the /metrics drops table at the last tick —
	// the "what is actually being shed" evidence next to the knobs.
	DropsByCause map[string]uint64 `json:"drops_by_cause,omitempty"`
	// Decisions are the most recent control actions, oldest first.
	Decisions []Decision `json:"decisions"`
}

// Controller is the feedback loop. Construct with New, then either Start a
// background goroutine or drive Step directly from tests. All mutable state
// is owned by whichever goroutine calls Step (Start's loop in production);
// Snapshot is safe from any goroutine.
//
//scap:owner controller
type Controller struct {
	cfg Config
	sig Signals
	act Actuators

	mode       Mode
	dynCutoff  int64
	budget     int
	calmTicks  int
	lastAction int64
	ticks      uint64
	decisions  []Decision
	watermarks []float64
	prevPrio   []uint64
	claimed    bool

	// Clamp discharge tracking: previous CutoffBytes reading and its clock,
	// diffed into dischargeBps each tick.
	prevCutoffBytes uint64
	prevCutoffTime  int64
	dischargeBps    int64

	// snap is the published state; any goroutine may load it.
	//
	//scap:atomics
	snap atomic.Pointer[Snapshot]

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds a controller from a config (defaults applied), signals, and
// actuators. The controller takes no actions until Step runs.
func New(cfg Config, sig Signals, act Actuators) *Controller {
	c := &Controller{
		cfg:       cfg.withDefaults(),
		sig:       sig,
		act:       act,
		mode:      ModeCalm,
		dynCutoff: -1,
		budget:    -1,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	c.snap.Store(&Snapshot{Enabled: cfg.Enabled, Mode: ModeCalm.String(), DynCutoff: -1, FDIRBudget: -1, Decisions: []Decision{}})
	return c
}

// Start launches the control loop goroutine. Stop terminates it.
func (c *Controller) Start() {
	go c.loop()
}

// Stop terminates the control loop and waits for it to exit. Safe to call
// more than once; a controller that was never started must not be stopped.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// loop is the controller goroutine: one Step per Interval until stopped.
//
//scap:goroutine controller
func (c *Controller) loop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.Step(c.cfg.Now())
		}
	}
}

// Step runs one control iteration against the clock reading now. Exported
// so tests drive scripted signal sequences deterministically; production
// code lets the Start loop call it.
//
//scap:onlyrole controller
func (c *Controller) Step(now int64) {
	c.ticks++
	if !c.claimed {
		// First tick: take ownership of the FDIR budget. Hardware drop
		// filters are reserved for overload episodes from here on.
		c.claimed = true
		c.setBudget(now, 0, "controller start: gate NIC drops to overload")
	}
	mf, af := c.fractions()
	frac := mf
	if af > frac {
		frac = af
	}
	p99 := int64(c.readP99())
	discharging := c.updateDischarge(now)

	switch c.mode {
	case ModeCalm:
		if frac >= c.cfg.EnterFraction {
			c.mode = ModePressure
			c.calmTicks = 0
			c.tighten(now, frac, p99)
			if !c.cfg.FixedWatermarks {
				// Seed (or act on) the per-priority byte baseline right at
				// episode entry so the ladder retargets on the next tick.
				c.retargetWatermarks(now, frac, p99)
			}
		}
	case ModePressure:
		switch {
		case frac >= c.cfg.EnterFraction:
			c.calmTicks = 0
			// Cooldown paces the staircase, not the panic button: at or
			// above SevereFraction the clamp-to-floor lands immediately —
			// waiting a cooldown at severe pressure loses the race against
			// the fill rate that got usage there.
			if c.dynCutoff > c.cfg.CutoffFloor &&
				(now-c.lastAction >= int64(c.cfg.Cooldown) || frac >= c.cfg.SevereFraction) {
				c.tighten(now, frac, p99)
			}
		case frac <= c.cfg.ExitFraction && !discharging:
			c.calmTicks++
			if c.calmTicks >= c.cfg.HoldTicks {
				c.mode = ModeRecovery
				c.calmTicks = 0
			}
		default:
			// Hysteresis band — or usage is low only because the clamp is
			// actively shedding the flood (discharging): hold the clamp and
			// reset the exit count.
			c.calmTicks = 0
		}
		if !c.cfg.FixedWatermarks {
			c.retargetWatermarks(now, frac, p99)
		}
	case ModeRecovery:
		if frac >= c.cfg.EnterFraction || discharging {
			// Pressure returned before the clamp was gone — either in the
			// memory signal or as a resumed flood against the clamp: straight
			// back to pressure mode; the cooldown pacing still applies.
			c.mode = ModePressure
			c.calmTicks = 0
			if now-c.lastAction >= int64(c.cfg.Cooldown) && c.dynCutoff > c.cfg.CutoffFloor {
				c.tighten(now, frac, p99)
			}
		} else if now-c.lastAction >= int64(c.cfg.Cooldown) {
			c.relax(now, frac, p99)
		}
	}
	c.publish(mf, af, p99)
}

// updateDischarge diffs the cumulative cutoff-discard counter into a
// bytes/sec rate and reports whether the clamp is still shedding above
// RelaxDischargeBps. A working clamp keeps memory usage low while the flood
// it absorbs is still arriving; this is the signal that distinguishes "the
// burst ended" from "the clamp is winning" — relaxing on the latter refills
// memory instantly and flaps.
func (c *Controller) updateDischarge(now int64) bool {
	if c.sig.CutoffBytes == nil || c.cfg.RelaxDischargeBps < 0 {
		c.dischargeBps = 0
		return false
	}
	cur := c.sig.CutoffBytes()
	if c.prevCutoffTime == 0 || now <= c.prevCutoffTime {
		c.prevCutoffBytes = cur
		c.prevCutoffTime = now
		return false
	}
	elapsed := now - c.prevCutoffTime
	c.dischargeBps = int64(float64(cur-c.prevCutoffBytes) / (float64(elapsed) / 1e9))
	c.prevCutoffBytes = cur
	c.prevCutoffTime = now
	return c.dynCutoff >= 0 && c.dischargeBps > c.cfg.RelaxDischargeBps
}

// fractions reads the two memory signals. The controlled variable is their
// max: either the byte budget or the arena filling up degrades capture.
func (c *Controller) fractions() (mf, af float64) {
	if c.sig.MemFraction != nil {
		mf = c.sig.MemFraction()
	}
	if c.sig.ArenaFraction != nil {
		af = c.sig.ArenaFraction()
	}
	return mf, af
}

func (c *Controller) readP99() float64 {
	if c.sig.RingWorkerP99 == nil {
		return 0
	}
	return c.sig.RingWorkerP99()
}

// tighten lowers the dynamic cutoff one multiplicative step (or installs
// CutoffStart when no clamp is active) and opens the episode's FDIR budget.
// At or above SevereFraction the staircase is skipped: the clamp goes
// straight to CutoffFloor, because one step per cooldown cannot outrun a
// burst that has already nearly filled memory.
func (c *Controller) tighten(now int64, frac float64, p99 int64) {
	v := c.cfg.CutoffStart
	evidence := "usage >= enter threshold"
	if c.dynCutoff >= 0 {
		v = int64(float64(c.dynCutoff) * c.cfg.TightenFactor)
	}
	if frac >= c.cfg.SevereFraction {
		v = c.cfg.CutoffFloor
		evidence = "usage >= severe threshold: clamp to floor"
	}
	if v < c.cfg.CutoffFloor {
		v = c.cfg.CutoffFloor
	}
	if c.budget != c.cfg.FDIRBudget {
		c.setBudget(now, c.cfg.FDIRBudget, "pressure episode: open NIC drop budget")
	}
	if v == c.dynCutoff {
		return
	}
	c.dynCutoff = v
	if c.act.SetCutoff != nil {
		c.act.SetCutoff(v)
	}
	c.note(metrics.FlightCtlTighten, v, perMille(frac))
	c.record(now, "tighten", v, frac, p99, evidence)
	c.lastAction = now
}

// relax raises the cutoff one multiplicative step; reaching CutoffStart
// removes the clamp entirely, ends the episode, and restores the default
// watermark ladder and a zero FDIR budget.
func (c *Controller) relax(now int64, frac float64, p99 int64) {
	if c.dynCutoff < 0 {
		c.finishEpisode(now, frac, p99)
		return
	}
	v := int64(float64(c.dynCutoff) * c.cfg.RelaxFactor)
	action := "relax"
	if v >= c.cfg.CutoffStart {
		v = -1
		action = "restore"
	}
	c.dynCutoff = v
	if c.act.SetCutoff != nil {
		c.act.SetCutoff(v)
	}
	c.note(metrics.FlightCtlRelax, v, perMille(frac))
	c.record(now, action, v, frac, p99, "usage held <= exit threshold")
	c.lastAction = now
	if v < 0 {
		c.finishEpisode(now, frac, p99)
	}
}

// finishEpisode returns the controller to calm and hands back the episode
// knobs: budget to zero, watermarks to the default ladder.
func (c *Controller) finishEpisode(now int64, frac float64, p99 int64) {
	c.mode = ModeCalm
	c.calmTicks = 0
	if c.budget != 0 {
		c.setBudget(now, 0, "episode over: close NIC drop budget")
	}
	if c.watermarks != nil {
		c.watermarks = nil
		if c.act.SetWatermarks != nil {
			c.act.SetWatermarks(nil)
		}
		c.note(metrics.FlightCtlWatermarks, -1, 0)
		c.record(now, "watermarks", -1, frac, p99, "episode over: restore default ladder")
	}
}

// setBudget actuates the sketch-FDIR budget and records the decision.
func (c *Controller) setBudget(now int64, v int, why string) {
	c.budget = v
	if c.act.SetFDIRBudget != nil {
		c.act.SetFDIRBudget(v)
	}
	heavies := 0
	if c.sig.HeavyCount != nil {
		heavies = c.sig.HeavyCount()
	}
	c.note(metrics.FlightCtlFDIRBudget, int64(v), int64(heavies))
	c.record(now, "fdir_budget", int64(v), c.lastFrac(), 0, why)
}

// retargetWatermarks respaces the PPL ladder from the sketches' observed
// per-priority byte mix: watermark_p = base + (1-base)·cumShare(≤p), so the
// volume shed when usage overshoots the base by x of the headroom is the
// lowest-priority ≈x share of traffic. Uniform traffic reproduces the
// default equal spacing. Only byte deltas since the last retarget count, so
// the ladder tracks the current mix, not the session average; tiny deltas
// and sub-1% ladder movements are ignored to keep the knob quiet.
func (c *Controller) retargetWatermarks(now int64, frac float64, p99 int64) {
	if c.sig.PrioBytes == nil || c.sig.BaseThreshold == nil {
		return
	}
	cur := c.sig.PrioBytes()
	n := len(cur)
	if n < 2 {
		return
	}
	if len(c.prevPrio) != n {
		c.prevPrio = make([]uint64, n)
		copy(c.prevPrio, cur)
		return
	}
	delta := make([]uint64, n)
	var total uint64
	for p := range cur {
		d := cur[p] - c.prevPrio[p]
		delta[p] = d
		total += d
	}
	// Under ~64 KiB of new evidence the share estimate is noise.
	if total < 64<<10 {
		return
	}
	copy(c.prevPrio, cur)
	base := c.sig.BaseThreshold()
	if base <= 0 || base >= 1 {
		return
	}
	w := make([]float64, n)
	cum := 0.0
	for p := 0; p < n; p++ {
		cum += float64(delta[p]) / float64(total)
		w[p] = base + (1-base)*cum
	}
	w[n-1] = 1
	if !materially(w, c.watermarks, 0.01) {
		return
	}
	c.watermarks = w
	if c.act.SetWatermarks != nil {
		c.act.SetWatermarks(w)
	}
	c.note(metrics.FlightCtlWatermarks, perMille(w[0]), int64(n))
	c.record(now, "watermarks", perMille(w[0]), frac, p99, "respaced ladder from sketch byte shares")
}

// materially reports whether any entry of a differs from b by at least eps
// (or the lengths differ).
func materially(a, b []float64, eps float64) bool {
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d >= eps {
			return true
		}
	}
	return false
}

// note writes a flight record when the actuator is wired.
func (c *Controller) note(kind metrics.FlightKind, value, aux int64) {
	if c.act.Note != nil {
		c.act.Note(kind, value, aux)
	}
}

// record appends to the decision ring.
func (c *Controller) record(now int64, action string, value int64, frac float64, p99 int64, evidence string) {
	d := Decision{
		TimeUnixNano:    now,
		Action:          action,
		Value:           value,
		MemPerMille:     perMille(frac),
		P99RingWorkerNs: p99,
		Evidence:        evidence,
	}
	c.decisions = append(c.decisions, d)
	if len(c.decisions) > maxDecisions {
		c.decisions = c.decisions[len(c.decisions)-maxDecisions:]
	}
}

// lastFrac rereads the pressure signal for evidence outside Step's locals.
func (c *Controller) lastFrac() float64 {
	mf, af := c.fractions()
	if af > mf {
		return af
	}
	return mf
}

// publish stores a fresh snapshot for /debug/ctlplane and scaptop.
func (c *Controller) publish(mf, af float64, p99 int64) {
	s := &Snapshot{
		Enabled:         true,
		Mode:            c.mode.String(),
		Ticks:           c.ticks,
		MemFraction:     mf,
		ArenaFraction:   af,
		P99RingWorkerNs: p99,
		DynCutoff:       c.dynCutoff,
		DischargeBps:    c.dischargeBps,
		FDIRBudget:      c.budget,
		Watermarks:      append([]float64(nil), c.watermarks...),
		Decisions:       append([]Decision(nil), c.decisions...),
	}
	if c.sig.UnderPPL != nil {
		s.UnderPPL = c.sig.UnderPPL()
	}
	if c.sig.DropsByCause != nil {
		s.DropsByCause = c.sig.DropsByCause()
	}
	c.snap.Store(s)
}

// Snapshot returns the last published state. Safe from any goroutine.
//
//scap:anyrole snapshot is an atomic pointer load
func (c *Controller) Snapshot() *Snapshot { return c.snap.Load() }

// perMille converts a fraction to thousandths, the flight recorder's
// fixed-point convention for fractions.
func perMille(f float64) int64 { return int64(f * 1000) }
