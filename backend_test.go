package scap

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"scap/internal/nic"
	"scap/internal/trace"
)

// writeGenPcap renders a generated workload to a classic-pcap file and
// returns its path.
func writeGenPcap(t *testing.T, seed int64, flows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "backend.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewPcapWriter(f, 0)
	gen := smallGen(seed, flows)
	trace.Replay(gen, 1e9, func(frame []byte, ts int64) bool {
		return w.Write(frame, ts) == nil
	})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestBackendPcapReplayEndToEnd(t *testing.T) {
	path := writeGenPcap(t, 11, 15)
	h, err := Create(Config{Queues: 2, Backend: BackendConfig{PcapPath: path}})
	if err != nil {
		t.Fatal(err)
	}
	var terms atomic.Int32
	h.DispatchTermination(func(sd *Stream) { terms.Add(1) })
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	if err := h.WaitBackend(); err != nil {
		t.Fatalf("WaitBackend: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if terms.Load() != 30 { // two directions per flow
		t.Errorf("terminations = %d, want 30", terms.Load())
	}
	st, err := h.GetStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesReceived == 0 || st.Packets == 0 {
		t.Errorf("replay backend processed nothing: %+v", st)
	}
}

func TestBackendPcapReplayNotInjectable(t *testing.T) {
	path := writeGenPcap(t, 12, 2)
	h, err := Create(Config{Queues: 1, Backend: BackendConfig{PcapPath: path}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.InjectFrame([]byte{1, 2, 3}, 1); !errors.Is(err, ErrNotInjectable) {
		t.Errorf("InjectFrame err = %v, want ErrNotInjectable", err)
	}
	if err := h.InjectBatch([]RawFrame{{Data: []byte{1}, TS: 1}}); !errors.Is(err, ErrNotInjectable) {
		t.Errorf("InjectBatch err = %v, want ErrNotInjectable", err)
	}
	if err := h.ReplayPcap(path); !errors.Is(err, ErrNotInjectable) {
		t.Errorf("ReplayPcap err = %v, want ErrNotInjectable", err)
	}
	if err := h.ReplaySource(smallGen(12, 1), 1e9); !errors.Is(err, ErrNotInjectable) {
		t.Errorf("ReplaySource err = %v, want ErrNotInjectable", err)
	}
	if err := h.WaitBackend(); err != nil {
		t.Fatalf("WaitBackend: %v", err)
	}
}

func TestBackendConfigMutuallyExclusive(t *testing.T) {
	h, err := Create(Config{Queues: 1, Backend: BackendConfig{PcapPath: "x.pcap", Iface: "eth0"}})
	if err != nil {
		t.Fatal(err)
	}
	err = h.StartCapture()
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("StartCapture err = %v, want mutual-exclusion error", err)
	}
	// The failed start must leave the socket unstarted and closable.
	if err := h.InjectFrame([]byte{1}, 1); err != ErrNotStarted {
		t.Errorf("after failed start, InjectFrame err = %v, want ErrNotStarted", err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBackendPcapReplayMissingFile(t *testing.T) {
	h, err := Create(Config{Queues: 1, Backend: BackendConfig{PcapPath: "/nonexistent/trace.pcap"}})
	if err != nil {
		t.Fatal(err)
	}
	err = h.StartCapture()
	if err == nil || !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("StartCapture err = %v, want wrapped os.ErrNotExist", err)
	}
	// A failed open unwinds completely: a second start with a fixed config
	// is not possible (config is frozen), but Close must still succeed.
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBackendIfaceWithoutLiveTag(t *testing.T) {
	if nicLiveSupported() {
		t.Skip("built with -tags live; AF_PACKET backend is available")
	}
	h, err := Create(Config{Queues: 1, Backend: BackendConfig{Iface: "lo"}})
	if err != nil {
		t.Fatal(err)
	}
	err = h.StartCapture()
	if !errors.Is(err, nic.ErrLiveUnsupported) {
		t.Fatalf("StartCapture err = %v, want ErrLiveUnsupported", err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// nicLiveSupported reports whether the AF_PACKET backend was compiled in.
func nicLiveSupported() bool {
	_, err := nic.NewAFPacket(nic.AFPacketConfig{Iface: "definitely-missing"})
	return !errors.Is(err, nic.ErrLiveUnsupported)
}
