package ctlplane

import (
	"math"
	"testing"
	"time"

	"scap/internal/metrics"
)

// harness scripts the controller's inputs and records its outputs: a fake
// clock, a settable pressure signal, and actuators that log every call.
type harness struct {
	now      int64
	mem      float64
	arena    float64
	ppl      bool
	p99      float64
	prio     []uint64
	heavies  int
	base     float64
	cutBytes uint64

	cutoffs    []int64
	budgets    []int
	watermarks [][]float64
	notes      []noteCall

	c *Controller
}

type noteCall struct {
	kind     metrics.FlightKind
	val, aux int64
}

func newHarness(cfg Config) *harness {
	h := &harness{base: 0.5}
	cfg.Enabled = true
	if cfg.Now == nil {
		cfg.Now = func() int64 { return h.now }
	}
	h.c = New(cfg, Signals{
		MemFraction:   func() float64 { return h.mem },
		ArenaFraction: func() float64 { return h.arena },
		UnderPPL:      func() bool { return h.ppl },
		RingWorkerP99: func() float64 { return h.p99 },
		PrioBytes: func() []uint64 {
			if h.prio == nil {
				return nil
			}
			return append([]uint64(nil), h.prio...)
		},
		HeavyCount:    func() int { return h.heavies },
		BaseThreshold: func() float64 { return h.base },
		CutoffBytes:   func() uint64 { return h.cutBytes },
	}, Actuators{
		SetCutoff:     func(v int64) { h.cutoffs = append(h.cutoffs, v) },
		SetFDIRBudget: func(v int) { h.budgets = append(h.budgets, v) },
		SetWatermarks: func(w []float64) { h.watermarks = append(h.watermarks, append([]float64(nil), w...)) },
		Note:          func(k metrics.FlightKind, v, a int64) { h.notes = append(h.notes, noteCall{k, v, a}) },
	})
	return h
}

// tick advances the fake clock by d and runs one Step.
func (h *harness) tick(d time.Duration) {
	h.now += int64(d)
	h.c.Step(h.now)
}

// testConfig is a small, fast ladder: 64K start, 16K floor, 100ms cooldown.
func testConfig() Config {
	return Config{
		Interval:       10 * time.Millisecond,
		EnterFraction:  0.85,
		ExitFraction:   0.70,
		SevereFraction: 0.97,
		Cooldown:       100 * time.Millisecond,
		HoldTicks:      3,
		CutoffStart:    64 << 10,
		CutoffFloor:    16 << 10,
		TightenFactor:  0.5,
		RelaxFactor:    2,
		FDIRBudget:     8,
	}
}

func TestPressureRampTightensToFloor(t *testing.T) {
	h := newHarness(testConfig())
	h.mem = 0.2
	h.tick(10 * time.Millisecond)
	// First tick claims the budget: gate NIC drops outside episodes.
	if len(h.budgets) != 1 || h.budgets[0] != 0 {
		t.Fatalf("budget claim = %v, want [0]", h.budgets)
	}
	if got := h.c.Snapshot(); got.Mode != "calm" || got.DynCutoff != -1 {
		t.Fatalf("calm snapshot = %+v", got)
	}

	// Cross the enter threshold: expect an immediate tighten to CutoffStart
	// and the episode budget opening.
	h.mem = 0.90
	h.heavies = 5
	h.tick(10 * time.Millisecond)
	if len(h.cutoffs) != 1 || h.cutoffs[0] != 64<<10 {
		t.Fatalf("cutoffs = %v, want [65536]", h.cutoffs)
	}
	if len(h.budgets) != 2 || h.budgets[1] != 8 {
		t.Fatalf("budgets = %v, want [0 8]", h.budgets)
	}
	if got := h.c.Snapshot(); got.Mode != "pressure" {
		t.Fatalf("mode = %q, want pressure", got.Mode)
	}

	// Sustained pressure: each cooldown expiry halves the cutoff until the
	// floor, then holds.
	for i := 0; i < 10; i++ {
		h.tick(110 * time.Millisecond)
	}
	want := []int64{64 << 10, 32 << 10, 16 << 10}
	if len(h.cutoffs) != len(want) {
		t.Fatalf("cutoffs = %v, want %v", h.cutoffs, want)
	}
	for i, v := range want {
		if h.cutoffs[i] != v {
			t.Fatalf("cutoffs = %v, want %v", h.cutoffs, want)
		}
	}
	if got := h.c.Snapshot(); got.DynCutoff != 16<<10 {
		t.Fatalf("DynCutoff = %d, want floor", got.DynCutoff)
	}

	// Flight notes: budget claim, episode budget, then one tighten per step.
	var tightens int
	for _, n := range h.notes {
		if n.kind == metrics.FlightCtlTighten {
			tightens++
		}
	}
	if tightens != 3 {
		t.Fatalf("tighten notes = %d, want 3", tightens)
	}
}

func TestCooldownPreventsFlap(t *testing.T) {
	h := newHarness(testConfig())
	h.mem = 0.90
	h.tick(10 * time.Millisecond) // tighten #1

	// Pressure stays high but the cooldown hasn't expired: rapid ticks must
	// not stack further tightens.
	for i := 0; i < 9; i++ {
		h.tick(10 * time.Millisecond)
	}
	if len(h.cutoffs) != 1 {
		t.Fatalf("cutoffs during cooldown = %v, want one", h.cutoffs)
	}

	// Oscillating around the band (between exit and enter) must neither
	// tighten nor start recovery.
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			h.mem = 0.80
		} else {
			h.mem = 0.72
		}
		h.tick(110 * time.Millisecond)
	}
	if len(h.cutoffs) != 1 {
		t.Fatalf("cutoffs while in band = %v, want one", h.cutoffs)
	}
	if got := h.c.Snapshot(); got.Mode != "pressure" {
		t.Fatalf("mode = %q, want pressure (hysteresis hold)", got.Mode)
	}

	// Dipping below exit for fewer than HoldTicks then popping back up must
	// not enter recovery either.
	h.mem = 0.60
	h.tick(10 * time.Millisecond)
	h.tick(10 * time.Millisecond)
	h.mem = 0.80
	h.tick(10 * time.Millisecond)
	if got := h.c.Snapshot(); got.Mode != "pressure" {
		t.Fatalf("mode after short dip = %q, want pressure", got.Mode)
	}
}

func TestRecoveryRelaxesAndRestores(t *testing.T) {
	h := newHarness(testConfig())
	h.mem = 0.90
	h.tick(10 * time.Millisecond)
	h.tick(110 * time.Millisecond)
	h.tick(110 * time.Millisecond) // at floor: 16K
	if h.c.Snapshot().DynCutoff != 16<<10 {
		t.Fatalf("setup: DynCutoff = %d", h.c.Snapshot().DynCutoff)
	}

	// Pressure clears; HoldTicks consecutive quiet ticks start recovery.
	h.mem = 0.30
	for i := 0; i < 3; i++ {
		h.tick(10 * time.Millisecond)
	}
	if got := h.c.Snapshot(); got.Mode != "recovery" {
		t.Fatalf("mode = %q, want recovery", got.Mode)
	}

	// Each cooldown expiry doubles the cutoff; reaching CutoffStart removes
	// the clamp, closes the budget, and returns to calm.
	h.tick(110 * time.Millisecond) // 32K
	h.tick(110 * time.Millisecond) // would be 64K >= start → restore (-1)
	n := len(h.cutoffs)
	if n < 2 || h.cutoffs[n-2] != 32<<10 || h.cutoffs[n-1] != -1 {
		t.Fatalf("relax cutoffs = %v, want ... 32768 -1", h.cutoffs)
	}
	snap := h.c.Snapshot()
	if snap.Mode != "calm" || snap.DynCutoff != -1 || snap.FDIRBudget != 0 {
		t.Fatalf("post-recovery snapshot = %+v", snap)
	}
	// Budget history: claim 0, episode 8, close 0.
	if len(h.budgets) != 3 || h.budgets[2] != 0 {
		t.Fatalf("budgets = %v, want [0 8 0]", h.budgets)
	}
	var relaxes []noteCall
	for _, nc := range h.notes {
		if nc.kind == metrics.FlightCtlRelax {
			relaxes = append(relaxes, nc)
		}
	}
	if len(relaxes) != 2 || relaxes[1].val != -1 {
		t.Fatalf("relax notes = %v", relaxes)
	}
}

func TestPressureReturnsDuringRecovery(t *testing.T) {
	h := newHarness(testConfig())
	h.mem = 0.90
	h.tick(10 * time.Millisecond) // tighten to 64K
	h.mem = 0.30
	for i := 0; i < 3; i++ {
		h.tick(10 * time.Millisecond)
	}
	if h.c.Snapshot().Mode != "recovery" {
		t.Fatal("setup: want recovery")
	}
	// Pressure spikes again: back to pressure mode, and after a cooldown it
	// keeps tightening instead of relaxing.
	h.mem = 0.95
	h.tick(110 * time.Millisecond)
	if got := h.c.Snapshot(); got.Mode != "pressure" {
		t.Fatalf("mode = %q, want pressure", got.Mode)
	}
	n := len(h.cutoffs)
	if h.cutoffs[n-1] != 32<<10 {
		t.Fatalf("cutoffs = %v, want tighten to 32768 last", h.cutoffs)
	}
}

func TestSevereClampSkipsStaircase(t *testing.T) {
	h := newHarness(testConfig())
	// Usage at or above SevereFraction: the first tighten goes straight to
	// the floor instead of starting the staircase at CutoffStart.
	h.mem = 0.98
	h.tick(10 * time.Millisecond)
	if len(h.cutoffs) != 1 || h.cutoffs[0] != 16<<10 {
		t.Fatalf("cutoffs = %v, want straight to floor [16384]", h.cutoffs)
	}
	var d *Decision
	for i := range h.c.Snapshot().Decisions {
		if dec := h.c.Snapshot().Decisions[i]; dec.Action == "tighten" {
			d = &dec
		}
	}
	if d == nil || d.Evidence != "usage >= severe threshold: clamp to floor" {
		t.Fatalf("severe tighten decision = %+v", d)
	}
	// Recovery still walks the clamp back up through the full staircase.
	h.mem = 0.30
	for i := 0; i < 20; i++ {
		h.tick(60 * time.Millisecond)
	}
	if got := h.c.Snapshot(); got.Mode != "calm" || got.DynCutoff != -1 {
		t.Fatalf("after recovery: %+v", got)
	}
}

// TestSevereBelowEnterIsRaised pins the config normalization: a severe
// threshold below the enter threshold would panic-clamp on every episode
// entry, so withDefaults raises it to EnterFraction.
func TestSevereBelowEnterIsRaised(t *testing.T) {
	cfg := testConfig()
	cfg.SevereFraction = 0.10
	cfg = cfg.withDefaults()
	if cfg.SevereFraction != cfg.EnterFraction {
		t.Fatalf("SevereFraction = %v, want raised to EnterFraction %v",
			cfg.SevereFraction, cfg.EnterFraction)
	}
}

// TestDischargeGateBlocksRecovery scripts the "clamp is winning" trap: after
// the clamp lands, memory usage collapses because the clamp discards the
// flood, not because the flood ended. While the cutoff-discard rate stays
// above RelaxDischargeBps the controller must hold the clamp; once the
// discard rate dies, normal recovery proceeds.
func TestDischargeGateBlocksRecovery(t *testing.T) {
	h := newHarness(testConfig())
	h.mem = 0.90
	h.tick(10 * time.Millisecond) // tighten to 64K
	if got := h.c.Snapshot(); got.Mode != "pressure" {
		t.Fatalf("mode = %q, want pressure", got.Mode)
	}

	// The clamp bites: usage collapses but the engines discard ~100 MB/s of
	// cutoff bytes — the flood is still arriving.
	h.mem = 0.10
	for i := 0; i < 30; i++ {
		h.cutBytes += 1 << 20 // 1 MiB per 10ms tick
		h.tick(10 * time.Millisecond)
	}
	if got := h.c.Snapshot(); got.Mode != "pressure" {
		t.Fatalf("mode with hot clamp = %q, want pressure (discharge gate)", got.Mode)
	}
	if got := h.c.Snapshot(); got.DischargeBps < 50<<20 {
		t.Fatalf("DischargeBps = %d, want ~100 MiB/s", got.DischargeBps)
	}
	if n := len(h.cutoffs); n != 1 {
		t.Fatalf("cutoffs while discharging = %v, want just the tighten", h.cutoffs)
	}

	// The flood ends: discard rate dies, recovery starts after HoldTicks and
	// the staircase walks back to restore.
	for i := 0; i < 20; i++ {
		h.tick(110 * time.Millisecond)
	}
	if got := h.c.Snapshot(); got.Mode != "calm" || got.DynCutoff != -1 {
		t.Fatalf("after flood = mode %q cutoff %d, want calm/-1", got.Mode, got.DynCutoff)
	}
}

// TestSevereBypassesCooldown: the cooldown paces the staircase, not the
// panic button — a usage reading at or above SevereFraction clamps to the
// floor immediately even if the last actuation was a moment ago.
func TestSevereBypassesCooldown(t *testing.T) {
	h := newHarness(testConfig())
	h.mem = 0.90
	h.tick(10 * time.Millisecond) // tighten to 64K, cooldown starts
	if len(h.cutoffs) != 1 || h.cutoffs[0] != 64<<10 {
		t.Fatalf("cutoffs = %v, want [65536]", h.cutoffs)
	}

	// One tick later — far inside the 100ms cooldown — usage hits severe.
	h.mem = 0.98
	h.tick(10 * time.Millisecond)
	if len(h.cutoffs) != 2 || h.cutoffs[1] != 16<<10 {
		t.Fatalf("cutoffs = %v, want immediate clamp to floor despite cooldown", h.cutoffs)
	}
	snap := h.c.Snapshot()
	if snap.Decisions[len(snap.Decisions)-1].Evidence != "usage >= severe threshold: clamp to floor" {
		t.Fatalf("evidence = %q", snap.Decisions[len(snap.Decisions)-1].Evidence)
	}
}

func TestArenaPressureCounts(t *testing.T) {
	h := newHarness(testConfig())
	h.mem = 0.10
	h.arena = 0.95 // block-granular pinning can fill the arena first
	h.tick(10 * time.Millisecond)
	if got := h.c.Snapshot(); got.Mode != "pressure" {
		t.Fatalf("mode = %q, want pressure on arena signal", got.Mode)
	}
}

func TestWatermarkRetargeting(t *testing.T) {
	h := newHarness(testConfig())
	h.base = 0.6
	h.prio = []uint64{0, 0, 0}
	h.mem = 0.90
	h.tick(10 * time.Millisecond) // enters pressure; prio baseline recorded

	// 70% of bytes are priority 0, 20% priority 1, 10% priority 2: the
	// ladder should move priority 0's drop point down toward base and
	// protect the upper classes.
	h.prio = []uint64{700 << 10, 200 << 10, 100 << 10}
	h.tick(10 * time.Millisecond)
	if len(h.watermarks) != 1 {
		t.Fatalf("watermark installs = %d, want 1", len(h.watermarks))
	}
	w := h.watermarks[0]
	want := []float64{0.6 + 0.4*0.7, 0.6 + 0.4*0.9, 1}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-9 {
			t.Fatalf("watermarks = %v, want %v", w, want)
		}
	}

	// Same mix again: no material change, no re-install.
	h.prio = []uint64{1400 << 10, 400 << 10, 200 << 10}
	h.tick(10 * time.Millisecond)
	if len(h.watermarks) != 1 {
		t.Fatalf("watermark installs after no-change = %d, want 1", len(h.watermarks))
	}

	// Tiny delta (below the 64K evidence gate): ignored.
	h.prio = []uint64{1400<<10 + 10, 400 << 10, 200<<10 + 10}
	h.tick(10 * time.Millisecond)
	if len(h.watermarks) != 1 {
		t.Fatalf("watermark installs after tiny delta = %d, want 1", len(h.watermarks))
	}

	// Recovery to calm restores the default ladder (nil install).
	h.mem = 0.30
	for i := 0; i < 3; i++ {
		h.tick(10 * time.Millisecond)
	}
	h.tick(110 * time.Millisecond) // restore (64K start tightened once)
	snap := h.c.Snapshot()
	if snap.Mode != "calm" {
		t.Fatalf("mode = %q, want calm", snap.Mode)
	}
	last := h.watermarks[len(h.watermarks)-1]
	if last != nil && len(last) != 0 {
		t.Fatalf("final watermark install = %v, want nil (default ladder)", last)
	}
	if snap.Watermarks != nil {
		t.Fatalf("snapshot watermarks = %v, want nil", snap.Watermarks)
	}
}

func TestUniformTrafficKeepsDefaultSpacing(t *testing.T) {
	h := newHarness(testConfig())
	h.base = 0.6
	h.prio = []uint64{0, 0}
	h.mem = 0.90
	h.tick(10 * time.Millisecond)
	h.prio = []uint64{500 << 10, 500 << 10}
	h.tick(10 * time.Millisecond)
	if len(h.watermarks) != 1 {
		t.Fatalf("installs = %d, want 1", len(h.watermarks))
	}
	w := h.watermarks[0]
	want := []float64{0.6 + 0.4*0.5, 1} // the default equal spacing for n=2
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-9 {
			t.Fatalf("watermarks = %v, want %v (default spacing)", w, want)
		}
	}
}

func TestSnapshotDecisionsAndDefaults(t *testing.T) {
	c := New(Config{Enabled: true}, Signals{}, Actuators{})
	if s := c.Snapshot(); s == nil || s.Mode != "calm" || s.DynCutoff != -1 {
		t.Fatalf("initial snapshot = %+v", s)
	}
	cfg := c.cfg
	if cfg.Interval != DefaultInterval || cfg.EnterFraction != DefaultEnterFraction ||
		cfg.CutoffFloor != DefaultCutoffFloor || cfg.FDIRBudget != DefaultFDIRBudget {
		t.Fatalf("defaults not applied: %+v", cfg)
	}

	h := newHarness(testConfig())
	h.mem = 0.90
	h.p99 = 3_000_000
	h.tick(10 * time.Millisecond)
	s := h.c.Snapshot()
	if len(s.Decisions) == 0 {
		t.Fatal("no decisions recorded")
	}
	d := s.Decisions[len(s.Decisions)-1]
	if d.Action != "tighten" || d.MemPerMille != 900 || d.P99RingWorkerNs != 3_000_000 {
		t.Fatalf("decision = %+v", d)
	}
	if s.P99RingWorkerNs != 3_000_000 {
		t.Fatalf("snapshot p99 = %d", s.P99RingWorkerNs)
	}
}

func TestStartStop(t *testing.T) {
	h := newHarness(Config{Interval: time.Millisecond})
	h.c.Start()
	defer h.c.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if h.c.Snapshot().Ticks > 2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("controller loop never ticked")
}
