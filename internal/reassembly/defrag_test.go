package reassembly

import (
	"bytes"
	"testing"

	"scap/internal/pkt"
)

func fragPackets(t *testing.T, payloadLen, mtu int) ([][]byte, []byte) {
	t.Helper()
	key := pkt.FlowKey{
		SrcIP: pkt.MustAddr("10.0.0.1"), DstIP: pkt.MustAddr("10.0.0.2"),
		SrcPort: 1111, DstPort: 80, Proto: pkt.ProtoTCP,
	}
	payload := bytes.Repeat([]byte("payload-"), payloadLen/8)
	frame := pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 1, Flags: pkt.FlagACK, IPID: 42, Payload: payload})
	var orig pkt.Packet
	if err := pkt.Decode(frame, &orig); err != nil {
		t.Fatal(err)
	}
	// The complete IP payload is TCP header + data.
	full := frame[orig.L4Offset:]
	return pkt.FragmentIPv4(frame, mtu), full
}

func decodeFrag(t *testing.T, frame []byte, ts int64) *pkt.Packet {
	t.Helper()
	p := &pkt.Packet{Timestamp: ts}
	if err := pkt.Decode(frame, p); err != nil {
		t.Fatal(err)
	}
	p.Timestamp = ts
	return p
}

func TestDefragInOrder(t *testing.T) {
	frames, want := fragPackets(t, 4096, 576)
	d := NewDefragmenter(0, 0)
	var got []byte
	for i, f := range frames {
		out := d.Add(decodeFrag(t, f, int64(i)))
		if i < len(frames)-1 && out != nil {
			t.Fatalf("completed early at fragment %d", i)
		}
		if out != nil {
			got = out
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("reassembled %d bytes, want %d", len(got), len(want))
	}
	if d.Pending() != 0 || d.Reassembled != 1 {
		t.Errorf("pending=%d reassembled=%d", d.Pending(), d.Reassembled)
	}
}

func TestDefragReversedOrder(t *testing.T) {
	frames, want := fragPackets(t, 4096, 576)
	d := NewDefragmenter(0, 0)
	var got []byte
	for i := len(frames) - 1; i >= 0; i-- {
		if out := d.Add(decodeFrag(t, frames[i], 0)); out != nil {
			got = out
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("reversed-order reassembly failed (%d vs %d bytes)", len(got), len(want))
	}
}

func TestDefragDuplicateFragmentFirstWins(t *testing.T) {
	frames, want := fragPackets(t, 2048, 576)
	d := NewDefragmenter(0, 0)
	var got []byte
	for i, f := range frames {
		if out := d.Add(decodeFrag(t, f, 0)); out != nil {
			got = out
		}
		if i == 0 {
			// Resend the first fragment with corrupted payload bytes: the
			// original copy must win (first-wins normalization).
			evil := append([]byte(nil), f...)
			for j := pkt.EthernetHeaderLen + pkt.IPv4MinHeaderLen; j < len(evil); j++ {
				evil[j] = 0xEE
			}
			d.Add(decodeFrag(t, evil, 0))
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatal("duplicate fragment overwrote original data")
	}
	if d.OverlapBytes == 0 {
		t.Error("overlap not counted")
	}
}

func TestDefragTimeout(t *testing.T) {
	frames, _ := fragPackets(t, 2048, 576)
	d := NewDefragmenter(1000, 0)
	d.Add(decodeFrag(t, frames[0], 100)) // partial
	d.Expire(2000)
	if d.Pending() != 0 || d.TimedOut != 1 {
		t.Errorf("pending=%d timedOut=%d", d.Pending(), d.TimedOut)
	}
	// Late fragments recreate a partial buffer but can never complete the
	// datagram without the rest.
	for _, f := range frames[1:] {
		if out := d.Add(decodeFrag(t, f, 3000)); out != nil {
			t.Fatal("completed after first fragment expired")
		}
	}
}

func TestDefragMemoryShedding(t *testing.T) {
	d := NewDefragmenter(0, 2048)
	// Many distinct partial datagrams overflow the budget.
	for id := 0; id < 32; id++ {
		frames, _ := fragPackets(t, 2048, 576)
		// Re-stamp the IP ID so each datagram is distinct.
		f := append([]byte(nil), frames[0]...)
		f[pkt.EthernetHeaderLen+4] = byte(id >> 8)
		f[pkt.EthernetHeaderLen+5] = byte(id)
		h := f[pkt.EthernetHeaderLen : pkt.EthernetHeaderLen+20]
		h[10], h[11] = 0, 0
		csum := pkt.Checksum(h, 0)
		h[10], h[11] = byte(csum>>8), byte(csum)
		d.Add(decodeFrag(t, f, int64(id)))
	}
	if d.OverLimit == 0 {
		t.Error("no datagrams shed despite memory pressure")
	}
}

func TestDefragPassthroughUnfragmented(t *testing.T) {
	key := pkt.FlowKey{
		SrcIP: pkt.MustAddr("10.0.0.1"), DstIP: pkt.MustAddr("10.0.0.2"),
		SrcPort: 1, DstPort: 2, Proto: pkt.ProtoUDP,
	}
	frame := pkt.BuildUDP(pkt.UDPSpec{Key: key, Payload: []byte("whole")})
	d := NewDefragmenter(0, 0)
	p := decodeFrag(t, frame, 0)
	if out := d.Add(p); string(out) != "whole" {
		t.Errorf("passthrough = %q", out)
	}
}

func TestDefragMalformedMiddleFragment(t *testing.T) {
	d := NewDefragmenter(0, 0)
	// Non-final fragment whose payload is not a multiple of 8.
	p := &pkt.Packet{
		Timestamp: 0,
		MoreFrags: true,
		Payload:   []byte("odd"),
		Key: pkt.FlowKey{
			SrcIP: pkt.MustAddr("1.1.1.1"), DstIP: pkt.MustAddr("2.2.2.2"),
			Proto: pkt.ProtoTCP,
		},
	}
	if out := d.Add(p); out != nil {
		t.Error("malformed fragment accepted")
	}
	if d.Pending() != 0 {
		t.Error("malformed fragment buffered")
	}
}
