package scap

import (
	"scap/internal/core"
	"scap/internal/ctlplane"
	"scap/internal/metrics"
)

// ControlConfig configures the adaptive overload control plane
// (internal/ctlplane). Set Enabled to turn the controller on; zero-valued
// fields take the package defaults — see the ctlplane.Config field docs for
// defaults, units, and safe ranges.
type ControlConfig = ctlplane.Config

// ControlSnapshot is the controller's published state, served at
// /debug/ctlplane.
type ControlSnapshot = ctlplane.Snapshot

// ControlState returns the control plane's last published snapshot, or nil
// when the controller is disabled or capture has not started. Safe from any
// goroutine.
func (h *Handle) ControlState() *ControlSnapshot {
	if h.ctl == nil {
		return nil
	}
	return h.ctl.Snapshot()
}

// startControl builds and launches the feedback controller once the memory
// manager, engines, and registry exist. Called from StartCapture.
func (h *Handle) startControl() {
	if !h.cfg.Control.Enabled {
		return
	}
	h.ctl = ctlplane.New(h.cfg.Control, h.controlSignals(), h.controlActuators())
	h.ctl.Start()
}

// controlSignals binds the controller's inputs to the live socket: memory
// and arena occupancy plus PPL state from the memory manager, ring→worker
// p99 latency from the stage histogram, per-priority byte totals and heavy
// counts from the engines' sketches, and the drops-by-cause counters from
// the registry.
func (h *Handle) controlSignals() ctlplane.Signals {
	return ctlplane.Signals{
		MemFraction:   h.mm.UsedFraction,
		ArenaFraction: h.mm.ArenaUsedFraction,
		UnderPPL:      h.mm.UnderPPL,
		BaseThreshold: h.mm.BaseThreshold,
		RingWorkerP99: func() float64 {
			return metrics.QuantileFromSnap(h.stageWorkerH.Snap(), 0.99)
		},
		PrioBytes: func() []uint64 {
			var sum []uint64
			for _, e := range h.engines {
				sk := e.Sketch()
				if sk == nil {
					continue
				}
				pb := sk.Snapshot().PrioBytes
				if sum == nil {
					sum = make([]uint64, len(pb))
				}
				for p := range pb {
					if p < len(sum) {
						sum[p] += pb[p]
					}
				}
			}
			return sum
		},
		HeavyCount: func() int {
			n := 0
			for _, e := range h.engines {
				if sk := e.Sketch(); sk != nil {
					n += len(sk.Snapshot().Heavies)
				}
			}
			return n
		},
		CutoffBytes: func() uint64 {
			var n uint64
			for _, e := range h.engines {
				n += e.Stats().CutoffBytes
			}
			return n
		},
		DropsByCause: func() map[string]uint64 {
			snap := h.reg.Snapshot()
			drops := make(map[string]uint64)
			for i := range snap.Counters {
				c := &snap.Counters[i]
				if c.Family == "drops" && c.Cause != "" {
					drops[c.Cause] += c.Total
				}
			}
			return drops
		},
	}
}

// controlActuators binds the controller's outputs to the socket's existing
// control paths: cutoff and FDIR-budget ops fan out to every engine through
// the mutex-guarded control queues (drained at the top of each engine's
// packet path, preserving the single-writer rule on engine state), the
// watermark ladder installs copy-on-write in the memory manager, and every
// decision lands in the flight recorder.
func (h *Handle) controlActuators() ctlplane.Actuators {
	return ctlplane.Actuators{
		SetCutoff: func(v int64) {
			for _, e := range h.engines {
				e.Control(core.Ctrl{Op: core.OpSetDynCutoff, Value: v})
			}
		},
		SetFDIRBudget: func(v int) {
			for _, e := range h.engines {
				e.Control(core.Ctrl{Op: core.OpSetSketchFDIRBudget, Value: int64(v)})
			}
		},
		SetWatermarks: h.mm.SetWatermarks,
		Note: func(kind metrics.FlightKind, value, aux int64) {
			h.reg.Flight().Note(0, kind, value, aux)
		},
	}
}
