package scap

// End-to-end integration tests: the full public-API pipeline against
// independently computed ground truth, cross-validation against the
// baseline reassembler, and failure injection (reordering, duplication,
// fragmentation).

import (
	"bytes"
	"crypto/sha256"
	"sort"
	"sync"
	"testing"

	"scap/internal/baseline"
	"scap/internal/pcapring"
	"scap/internal/pkt"
	"scap/internal/trace"
)

// groundTruth reconstructs each stream direction's true byte sequence from
// the raw frames: segments sorted by sequence number, overlaps first-wins.
// This is independent of the reassembly engine under test.
func groundTruth(t *testing.T, frames [][]byte) map[pkt.FlowKey][]byte {
	t.Helper()
	type seg struct {
		seq  int64
		data []byte
	}
	segs := map[pkt.FlowKey][]seg{}
	isn := map[pkt.FlowKey]int64{}
	var p pkt.Packet
	for _, f := range frames {
		if err := pkt.Decode(f, &p); err != nil {
			t.Fatal(err)
		}
		if p.Key.Proto != pkt.ProtoTCP {
			continue
		}
		if p.TCPFlags&pkt.FlagSYN != 0 {
			isn[p.Key] = int64(p.Seq) + 1
			continue
		}
		if len(p.Payload) > 0 {
			cp := append([]byte(nil), p.Payload...)
			segs[p.Key] = append(segs[p.Key], seg{seq: int64(p.Seq), data: cp})
		}
	}
	out := map[pkt.FlowKey][]byte{}
	for key, list := range segs {
		base, ok := isn[key]
		if !ok {
			continue
		}
		sort.SliceStable(list, func(i, j int) bool { return list[i].seq < list[j].seq })
		var buf []byte
		next := base
		for _, s := range list {
			off := s.seq - next
			switch {
			case off == 0:
				buf = append(buf, s.data...)
				next += int64(len(s.data))
			case off < 0: // duplicate / overlap: keep only the new tail
				if -off < int64(len(s.data)) {
					buf = append(buf, s.data[-off:]...)
					next = s.seq + int64(len(s.data))
				}
			default:
				t.Fatalf("ground truth has a hole at %v (gap %d)", key, off)
			}
		}
		out[key] = buf
	}
	return out
}

// captureStreams runs the public API over the frames and returns each
// direction's delivered bytes.
func captureStreams(t *testing.T, frames [][]byte, mode ReassemblyMode) map[pkt.FlowKey][]byte {
	t.Helper()
	h, err := Create(Config{ReassemblyMode: mode, Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := map[pkt.FlowKey][]byte{}
	h.DispatchData(func(sd *Stream) {
		mu.Lock()
		got[sd.Key()] = append(got[sd.Key()], sd.Data...)
		mu.Unlock()
	})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	if err := h.ReplaySource(&trace.SliceSource{Frames: frames}, 1e9); err != nil {
		t.Fatal(err)
	}
	h.Close()
	return got
}

func genFrames(cfg trace.GenConfig) [][]byte {
	g := trace.NewGenerator(cfg)
	return trace.Collect(g, 0)
}

func TestEndToEndMatchesGroundTruth(t *testing.T) {
	frames := genFrames(trace.GenConfig{
		Seed: 21, Flows: 40, Concurrency: 8, TCPFraction: 1,
		MinFlowBytes: 1000, MaxFlowBytes: 100 << 10,
	})
	want := groundTruth(t, frames)
	got := captureStreams(t, frames, TCPFast)
	checked := 0
	for key, wantBytes := range want {
		if !bytes.Equal(got[key], wantBytes) {
			t.Errorf("stream %v: %d bytes delivered, %d expected", key, len(got[key]), len(wantBytes))
			continue
		}
		checked++
	}
	if checked < 70 { // 40 flows x 2 directions, some may be tiny
		t.Errorf("only %d directions verified", checked)
	}
}

func TestEndToEndWithReorderingAndDuplicates(t *testing.T) {
	frames := genFrames(trace.GenConfig{
		Seed: 22, Flows: 40, Concurrency: 4, TCPFraction: 1,
		MinFlowBytes: 5000, MaxFlowBytes: 60 << 10,
		ReorderProb: 0.15, DuplicateProb: 0.15,
	})
	want := groundTruth(t, frames)
	for _, mode := range []ReassemblyMode{TCPFast, TCPStrict} {
		got := captureStreams(t, frames, mode)
		for key, wantBytes := range want {
			if !bytes.Equal(got[key], wantBytes) {
				t.Errorf("mode %v stream %v: mismatch (%d vs %d bytes)",
					mode, key, len(got[key]), len(wantBytes))
			}
		}
	}
}

func TestEndToEndFragmentedTrafficStrictMode(t *testing.T) {
	whole := genFrames(trace.GenConfig{
		Seed: 23, Flows: 10, Concurrency: 2, TCPFraction: 1,
		MinFlowBytes: 20 << 10, MaxFlowBytes: 40 << 10,
	})
	want := groundTruth(t, whole)
	// Fragment every large IPv4 frame.
	var fragged [][]byte
	var p pkt.Packet
	for _, f := range whole {
		if err := pkt.Decode(f, &p); err == nil && p.IPVersion == 4 && len(f) > 600 {
			fragged = append(fragged, pkt.FragmentIPv4(f, 576)...)
		} else {
			fragged = append(fragged, f)
		}
	}
	got := captureStreams(t, fragged, TCPStrict)
	for key, wantBytes := range want {
		if !bytes.Equal(got[key], wantBytes) {
			t.Errorf("strict mode with fragmentation: stream %v mismatch (%d vs %d bytes)",
				key, len(got[key]), len(wantBytes))
		}
	}
}

// TestScapAgreesWithBaselineReassembler cross-validates two independent
// implementations: the kernel-path engine and the user-level baseline must
// produce identical stream bytes on a loss-free run.
func TestScapAgreesWithBaselineReassembler(t *testing.T) {
	frames := genFrames(trace.GenConfig{
		Seed: 24, Flows: 30, Concurrency: 6, TCPFraction: 1,
		MinFlowBytes: 2000, MaxFlowBytes: 50 << 10,
		ReorderProb: 0.1,
	})
	scapGot := captureStreams(t, frames, TCPFast)

	nidsGot := map[pkt.FlowKey][]byte{}
	nids := baseline.NewLibnids(0, baseline.CutoffUnlimited, func(s *baseline.UserStream, b []byte) {
		nidsGot[s.Key] = append(nidsGot[s.Key], b...)
	})
	for i, f := range frames {
		nids.ProcessFrame(pcapring.Frame{Data: f, TS: int64(i) * 1000, WireLen: len(f)})
	}
	nids.Close()

	if len(nidsGot) == 0 {
		t.Fatal("baseline produced nothing")
	}
	for key, nb := range nidsGot {
		if len(nb) == 0 {
			continue
		}
		if !bytes.Equal(scapGot[key], nb) {
			sh, nh := sha256.Sum256(scapGot[key]), sha256.Sum256(nb)
			t.Errorf("disagreement on %v: scap %d bytes (sha %x…) vs libnids %d bytes (sha %x…)",
				key, len(scapGot[key]), sh[:4], len(nb), nh[:4])
		}
	}
}

// TestUDPAndMixedTraffic exercises the non-TCP path end to end.
func TestUDPAndMixedTraffic(t *testing.T) {
	frames := genFrames(trace.GenConfig{
		Seed: 25, Flows: 60, Concurrency: 8, TCPFraction: 0.5,
		MinFlowBytes: 500, MaxFlowBytes: 5000,
	})
	h, _ := Create(Config{Queues: 2})
	var mu sync.Mutex
	var tcpStreams, udpStreams int
	h.DispatchTermination(func(sd *Stream) {
		mu.Lock()
		defer mu.Unlock()
		switch sd.Key().Proto {
		case pkt.ProtoTCP:
			tcpStreams++
		case pkt.ProtoUDP:
			udpStreams++
		}
	})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	if err := h.ReplaySource(&trace.SliceSource{Frames: frames}, 1e9); err != nil {
		t.Fatal(err)
	}
	h.Close()
	mu.Lock()
	defer mu.Unlock()
	if tcpStreams == 0 || udpStreams == 0 {
		t.Errorf("tcp=%d udp=%d — both protocols expected", tcpStreams, udpStreams)
	}
}

// TestHostileFramesDoNotBreakPipeline mixes garbage, truncated frames,
// and mid-stream corruption into a normal workload: the pipeline must not
// panic, must count decode failures, and must still process the healthy
// traffic.
func TestHostileFramesDoNotBreakPipeline(t *testing.T) {
	clean := genFrames(trace.GenConfig{
		Seed: 26, Flows: 20, Concurrency: 4, TCPFraction: 1,
		MinFlowBytes: 1000, MaxFlowBytes: 10000,
	})
	hostile := make([][]byte, 0, len(clean)*2)
	rnd := uint64(1)
	next := func(n uint64) uint64 { rnd = rnd*6364136223846793005 + 1442695040888963407; return rnd % n }
	for _, f := range clean {
		hostile = append(hostile, f)
		switch next(4) {
		case 0: // garbage blob
			g := make([]byte, 10+next(100))
			for i := range g {
				g[i] = byte(next(256))
			}
			hostile = append(hostile, g)
		case 1: // truncated copy
			hostile = append(hostile, append([]byte(nil), f[:len(f)/2]...))
		case 2: // corrupted header byte
			c := append([]byte(nil), f...)
			c[int(next(uint64(len(c))))] ^= 0xff
			hostile = append(hostile, c)
		}
	}
	h, _ := Create(Config{Queues: 2})
	var terms int32
	var mu sync.Mutex
	h.DispatchTermination(func(sd *Stream) { mu.Lock(); terms++; mu.Unlock() })
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	if err := h.ReplaySource(&trace.SliceSource{Frames: hostile}, 1e9); err != nil {
		t.Fatal(err)
	}
	h.Close()
	mu.Lock()
	defer mu.Unlock()
	if terms < 30 { // most of the 40 directions should still terminate
		t.Errorf("only %d terminations with hostile frames mixed in", terms)
	}
}

// TestTargetBasedPoliciesDiverge feeds the same ambiguous overlap to two
// sockets with different per-host policies and checks they resolve it
// differently — the Shankar-Paxson attack surface the per-host
// configuration exists for.
func TestTargetBasedPoliciesDiverge(t *testing.T) {
	key := pkt.FlowKey{
		SrcIP: pkt.MustAddr("10.0.0.1"), DstIP: pkt.MustAddr("192.168.7.7"),
		SrcPort: 41000, DstPort: 80, Proto: pkt.ProtoTCP,
	}
	mkFrames := func() [][]byte {
		return [][]byte{
			pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 100, Flags: pkt.FlagSYN}),
			pkt.BuildTCP(pkt.TCPSpec{Key: key.Reverse(), Seq: 900, Ack: 101, Flags: pkt.FlagSYN | pkt.FlagACK}),
			// Out-of-order islands with a conflicting overlap at the same
			// start (delivery blocked until the hole at 101 fills).
			pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 111, Ack: 901, Flags: pkt.FlagACK, Payload: []byte("AAAA")}),
			pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 111, Ack: 901, Flags: pkt.FlagACK, Payload: []byte("BBBB")}),
			pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 101, Ack: 901, Flags: pkt.FlagACK, Payload: []byte("0123456789")}),
			pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 115, Ack: 901, Flags: pkt.FlagFIN | pkt.FlagACK}),
			pkt.BuildTCP(pkt.TCPSpec{Key: key.Reverse(), Seq: 901, Ack: 116, Flags: pkt.FlagFIN | pkt.FlagACK}),
		}
	}
	capture := func(policy OverlapPolicy) []byte {
		h, _ := Create(Config{Queues: 1})
		if err := h.AddPolicyRule("192.168.7.0/24", policy); err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var got []byte
		h.DispatchData(func(sd *Stream) {
			if sd.Dir() == DirClient {
				mu.Lock()
				got = append(got, sd.Data...)
				mu.Unlock()
			}
		})
		h.StartCapture()
		for i, f := range mkFrames() {
			h.InjectFrame(f, int64(i+1)*1000)
		}
		h.Close()
		mu.Lock()
		defer mu.Unlock()
		return got
	}
	first := capture(PolicyFirst)
	last := capture(PolicyLast)
	if !bytes.Equal(first, []byte("0123456789AAAA")) {
		t.Errorf("first-wins policy delivered %q", first)
	}
	if !bytes.Equal(last, []byte("0123456789BBBB")) {
		t.Errorf("last-wins policy delivered %q", last)
	}
}
