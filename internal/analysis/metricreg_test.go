package analysis

import (
	"strings"
	"testing"
)

func TestMetricRegFixtures(t *testing.T) {
	_, pkg := loadFixtures(t, "metricreg")
	diags := checkAnalyzer(t, MetricReg, pkg)

	// The diagnostic anchors on the call expression and names the allowed
	// fast path — the generic atomic allowlist, or the flight recorder's
	// no-alloc encoder for FlightRecorder methods.
	for _, d := range diags {
		if !strings.Contains(d.Message, "atomic fast path") && !strings.Contains(d.Message, "no-alloc encoder") {
			t.Errorf("diagnostic should name the allowed fast path: %s", d)
		}
		if strings.Contains(d.Message, "FlightRecorder") && !strings.Contains(d.Message, "FlightRecorder.Note") {
			t.Errorf("flight diagnostic should point at the Note encoder: %s", d)
		}
	}
}

func TestMetricRegSuppression(t *testing.T) {
	// Audited carries //scaplint:ignore metricreg; the raw run must find
	// it, the filtered run must not.
	_, pkg := loadFixtures(t, "metricreg")
	raw := MetricReg.Run(pkg)
	found := false
	for _, d := range raw {
		if strings.Contains(d.Message, "Audited: call to metrics.Snapshot") {
			found = true
		}
	}
	if !found {
		t.Fatal("raw run should flag engine.Audited before suppression filtering")
	}
	for _, d := range RunAll([]*Package{pkg}, []*Analyzer{MetricReg}) {
		if strings.Contains(d.Message, "Audited") {
			t.Errorf("suppressed diagnostic survived filtering: %s", d)
		}
	}
}

// TestMetricRegOnRepo pins the invariant the analyzer exists to protect:
// the real capture path (root package plus every internal package) must be
// clean. A regression that registers metrics or assembles snapshots inside
// a //scap:hotpath function fails here before it fails in CI lint.
func TestMetricRegOnRepo(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Packages("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunAll(pkgs, []*Analyzer{MetricReg}) {
		t.Errorf("capture path violates the metrics fast-path invariant: %s", d)
	}
	// The engine package must also pass raw — zero suppressions: the flight
	// recorder and stage-latency plumbing were designed to fit the fast path,
	// not to be waived past it.
	for _, p := range pkgs {
		if !strings.HasSuffix(p.Path, "internal/core") {
			continue
		}
		for _, d := range MetricReg.Run(p) {
			t.Errorf("internal/core needs a metricreg suppression, which is not allowed: %s", d)
		}
	}
}
