GO ?= go

.PHONY: build test test-short race vet lint fmt-check check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -short -race ./...

vet:
	$(GO) vet ./...

# lint runs scaplint, the repo's own static-analysis suite (hot-path
# allocation, snapshot-getter, and lock-discipline invariants).
lint:
	$(GO) run ./cmd/scaplint ./...

fmt-check:
	@out=$$(gofmt -l . | grep -v '^testdata/' || true); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# check is the full CI gate.
check: build vet lint fmt-check race
