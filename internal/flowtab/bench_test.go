package flowtab

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"scap/internal/pkt"
)

func benchKeys(n int) []pkt.FlowKey {
	keys := make([]pkt.FlowKey, n)
	for i := range keys {
		keys[i] = pkt.FlowKey{
			SrcIP:   netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
			DstIP:   netip.AddrFrom4([4]byte{192, 168, 1, 1}),
			SrcPort: uint16(i),
			DstPort: 80,
			Proto:   pkt.ProtoTCP,
		}
	}
	return keys
}

func BenchmarkLookupHit(b *testing.B) {
	tab := NewTable(rand.New(rand.NewSource(1)))
	keys := benchKeys(1 << 16)
	for i, k := range keys {
		tab.GetOrCreate(k, int64(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tab.Lookup(keys[i&(len(keys)-1)]) == nil {
			b.Fatal("miss")
		}
	}
}

func BenchmarkGetOrCreateChurn(b *testing.B) {
	tab := NewTable(rand.New(rand.NewSource(2)))
	keys := benchKeys(1 << 12)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := keys[i&(len(keys)-1)]
		s, created := tab.GetOrCreate(k, int64(i))
		if created && tab.Len() > 1<<11 {
			// Steady-state churn: retire the oldest.
			if old := tab.EvictOldest(nil); old != nil {
				tab.Recycle(old)
			}
		}
		_ = s
	}
}

// BenchmarkLookup1M measures the hit path as the table scales from 2^12 to
// 2^20 resident flows — the ROADMAP's million-flow flat-curve target. The
// access pattern cycles through every key, so at large sizes the working
// set is far beyond cache and the per-lookup cost is dominated by how many
// cache lines a probe touches.
func BenchmarkLookup1M(b *testing.B) {
	for _, pow := range []int{12, 14, 16, 18, 20} {
		n := 1 << pow
		b.Run(fmt.Sprintf("flows=2^%d", pow), func(b *testing.B) {
			tab := NewTable(rand.New(rand.NewSource(1)))
			keys := benchKeys(n)
			for i, k := range keys {
				tab.GetOrCreate(k, int64(i))
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if tab.Lookup(keys[i&(n-1)]) == nil {
					b.Fatal("miss")
				}
			}
		})
	}
}

// BenchmarkLookupMiss measures the negative path — the per-packet cost of
// asking "is this flow tracked?" for untracked traffic (exactly what the
// sketch front-end pays on every suppressed flow's packet).
func BenchmarkLookupMiss(b *testing.B) {
	for _, pow := range []int{12, 16, 20} {
		n := 1 << pow
		b.Run(fmt.Sprintf("flows=2^%d", pow), func(b *testing.B) {
			tab := NewTable(rand.New(rand.NewSource(1)))
			keys := benchKeys(2 * n)
			for i := 0; i < n; i++ {
				tab.GetOrCreate(keys[i], int64(i))
			}
			misses := keys[n:]
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if tab.Lookup(misses[i&(n-1)]) != nil {
					b.Fatal("unexpected hit")
				}
			}
		})
	}
}

func BenchmarkTouchLRU(b *testing.B) {
	tab := NewTable(rand.New(rand.NewSource(3)))
	keys := benchKeys(1 << 10)
	streams := make([]*Stream, len(keys))
	for i, k := range keys {
		streams[i], _ = tab.GetOrCreate(k, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Touch(streams[i&(len(streams)-1)], int64(i))
	}
}
