// Command scaptop is a terminal viewer for a running Scap socket's debug
// server (Handle.Serve): it polls /metrics and renders totals, per-core
// rates, memory pressure, and the recent overload events — top(1) for the
// capture path.
//
// Usage:
//
//	scaptop -addr 127.0.0.1:6060             # watch a live capture
//	scaptop -addr 127.0.0.1:6060 -plain -n 3 # three plain snapshots
//	scaptop -smoke                           # self-contained end-to-end check
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"scap"
	"scap/internal/metrics"
	"scap/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:6060", "debug server address (Handle.Serve)")
		interval = flag.Duration("interval", time.Second, "poll interval")
		count    = flag.Int("n", 0, "number of polls (0 = until interrupted)")
		plain    = flag.Bool("plain", false, "append snapshots instead of redrawing the screen")
		smoke    = flag.Bool("smoke", false, "run an in-process capture, scrape it once, and exit")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "scaptop -smoke:", err)
			os.Exit(1)
		}
		return
	}

	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		p, err := fetch(*addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scaptop:", err)
			os.Exit(1)
		}
		if !*plain {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Print(render(p))
	}
}

// fetch scrapes one /metrics payload.
func fetch(addr string) (*metrics.Payload, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return metrics.ParsePayload(body)
}

// perCoreRows is the counter set shown per core, in display order.
var perCoreRows = []struct{ name, label string }{
	{"frames_total", "frames/s"},
	{"packets_total", "pkts/s"},
	{"stored_bytes_total", "stored B/s"},
	{"ppl_dropped_pkts_total", "ppl-drop/s"},
	{"cutoff_pkts_total", "cutoff/s"},
	{"events_lost_total", "ev-lost/s"},
}

// render formats one payload as the full-screen view.
func render(p *metrics.Payload) string {
	var b strings.Builder
	ts := time.Unix(0, p.TimeUnixNano).Format("15:04:05")
	fmt.Fprintf(&b, "scaptop  %s  window %.1fs  cores %d\n\n", ts, p.WindowSeconds, p.Cores)

	total := func(name string) uint64 {
		if c := p.Counter(name); c != nil {
			return c.Total
		}
		return 0
	}
	rate := func(name string) float64 {
		if c := p.Counter(name); c != nil {
			return c.Rate
		}
		return 0
	}
	fmt.Fprintf(&b, "frames   %12d  %10.0f/s    nic-ring-drop %10d  %8.0f/s\n",
		total("nic_frames_total"), rate("nic_frames_total"),
		total("nic_dropped_ring_total"), rate("nic_dropped_ring_total"))
	fmt.Fprintf(&b, "packets  %12d  %10.0f/s    nic-fdir-drop %10d  %8.0f/s\n",
		total("packets_total"), rate("packets_total"),
		total("nic_dropped_filter_total"), rate("nic_dropped_filter_total"))
	fmt.Fprintf(&b, "stored B %12d  %10.0f/s    ppl-drop      %10d  %8.0f/s\n",
		total("stored_bytes_total"), rate("stored_bytes_total"),
		total("ppl_dropped_pkts_total"), rate("ppl_dropped_pkts_total"))
	fmt.Fprintf(&b, "streams  %12d created       cutoff-pkts   %10d  %8.0f/s\n",
		total("streams_created_total"),
		total("cutoff_pkts_total"), rate("cutoff_pkts_total"))

	used, size := gaugeVal(p, "memory_used_bytes"), gaugeVal(p, "memory_size_bytes")
	pct := 0.0
	if size > 0 {
		pct = 100 * float64(used) / float64(size)
	}
	fmt.Fprintf(&b, "memory   %12d / %d bytes (%.1f%%), highwater %d\n",
		used, size, pct, gaugeVal(p, "memory_highwater_bytes"))
	fmt.Fprintf(&b, "arena    %12d / %d blocks in use (%d B/block, %d segs committed), free: global %d",
		gaugeVal(p, "arena_blocks_inuse"), gaugeVal(p, "arena_blocks_total"),
		gaugeVal(p, "arena_block_size_bytes"), gaugeVal(p, "arena_segments_committed"),
		gaugeVal(p, "arena_freelist_global"))
	for core := 0; core < p.Cores; core++ {
		fmt.Fprintf(&b, " c%d=%d", core, gaugeVal(p, fmt.Sprintf("arena_freelist_core%d", core)))
	}
	b.WriteString("\n\n")

	// Per-core rate table: one column per counter, one row per core.
	fmt.Fprintf(&b, "core")
	for _, r := range perCoreRows {
		fmt.Fprintf(&b, "  %12s", r.label)
	}
	b.WriteByte('\n')
	for core := 0; core < p.Cores; core++ {
		fmt.Fprintf(&b, "%4d", core)
		for _, r := range perCoreRows {
			v := 0.0
			if c := p.Counter(r.name); c != nil && core < len(c.PerCoreRate) {
				v = c.PerCoreRate[core]
			}
			fmt.Fprintf(&b, "  %12.0f", v)
		}
		b.WriteByte('\n')
	}

	if len(p.Events) > 0 {
		fmt.Fprintf(&b, "\nrecent overload events (%d):\n", len(p.Events))
		evs := p.Events
		if len(evs) > 10 {
			evs = evs[len(evs)-10:]
		}
		// Newest last is natural for a log; keep payload (oldest-first)
		// order but make it explicit for readers of this code.
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].TimeUnixNano < evs[j].TimeUnixNano })
		for _, e := range evs {
			fmt.Fprintf(&b, "  %s  %-20s core=%d", time.Unix(0, e.TimeUnixNano).Format("15:04:05.000"), e.KindName, e.Core)
			if e.Value != 0 {
				fmt.Fprintf(&b, " value=%d", e.Value)
			}
			if e.Dur != 0 {
				fmt.Fprintf(&b, " dur=%s", time.Duration(e.Dur))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func gaugeVal(p *metrics.Payload, name string) int64 {
	if g := p.Gauge(name); g != nil {
		return g.Value
	}
	return 0
}

// runSmoke is the CI end-to-end check (make serve-smoke): replay a small
// synthetic trace through a real socket with Serve enabled, scrape /metrics
// over HTTP, and require nonzero packets_total.
func runSmoke() error {
	h, err := scap.Create(scap.Config{Queues: 2, MemorySize: 64 << 20})
	if err != nil {
		return err
	}
	h.DispatchData(func(sd *scap.Stream) {})
	if err := h.StartCapture(); err != nil {
		return err
	}
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	gen := trace.ConcurrentStreamsWorkload(1, 200, 16, 40, 1460)
	if err := h.ReplaySource(gen, 1e9); err != nil {
		return err
	}
	p, err := fetch(srv.Addr())
	if err != nil {
		return err
	}
	pk := p.Counter("packets_total")
	if pk == nil || pk.Total == 0 {
		return fmt.Errorf("packets_total missing or zero in /metrics payload")
	}
	if len(pk.PerCore) != 2 {
		return fmt.Errorf("packets_total per-core = %v, want 2 cores", pk.PerCore)
	}
	if err := h.Close(); err != nil {
		return err
	}
	fmt.Printf("serve-smoke OK: packets_total=%d per-core=%v frames=%d\n",
		pk.Total, pk.PerCore, p.Counter("nic_frames_total").Total)
	fmt.Print(render(p))
	return nil
}
