// Package bpf implements the packet-filter expression language Scap
// applications use to select traffic, modeled on the classic BPF / tcpdump
// syntax: "tcp and port 80", "src net 10.0.0.0/8 and not udp",
// "tcp portrange 8000-9000 or icmp".
//
// Expressions are parsed into an AST and compiled to a flat instruction
// program executed by a small stack VM over decoded packets. The AST
// evaluator is kept as a reference implementation; property tests assert the
// two agree on random packets.
package bpf

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokWord
	tokNumber
	tokLParen
	tokRParen
	tokBang
	tokAndAnd
	tokOrOr
	tokDash
	tokSlash
	tokLBracket
	tokRBracket
	tokColon
	tokAmp
	tokCmp // =, ==, !=, <, <=, >, >= (text carries the operator)
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of expression"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	input string
	pos   int
}

// wordRune reports whether r may appear inside a word token. Addresses
// (IPv4 dotted quads, IPv6 with colons) lex as single words.
func wordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '.' || r == ':' || r == '_'
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch c {
	case '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case '[':
		l.pos++
		return token{tokLBracket, "[", start}, nil
	case ']':
		l.pos++
		return token{tokRBracket, "]", start}, nil
	case '!':
		if strings.HasPrefix(l.input[l.pos:], "!=") {
			l.pos += 2
			return token{tokCmp, "!=", start}, nil
		}
		l.pos++
		return token{tokBang, "!", start}, nil
	case '=':
		if strings.HasPrefix(l.input[l.pos:], "==") {
			l.pos += 2
			return token{tokCmp, "==", start}, nil
		}
		l.pos++
		return token{tokCmp, "=", start}, nil
	case '<':
		if strings.HasPrefix(l.input[l.pos:], "<=") {
			l.pos += 2
			return token{tokCmp, "<=", start}, nil
		}
		l.pos++
		return token{tokCmp, "<", start}, nil
	case '>':
		if strings.HasPrefix(l.input[l.pos:], ">=") {
			l.pos += 2
			return token{tokCmp, ">=", start}, nil
		}
		l.pos++
		return token{tokCmp, ">", start}, nil
	case '-':
		l.pos++
		return token{tokDash, "-", start}, nil
	case '/':
		l.pos++
		return token{tokSlash, "/", start}, nil
	case '&':
		if strings.HasPrefix(l.input[l.pos:], "&&") {
			l.pos += 2
			return token{tokAndAnd, "&&", start}, nil
		}
		l.pos++
		return token{tokAmp, "&", start}, nil
	case '|':
		if strings.HasPrefix(l.input[l.pos:], "||") {
			l.pos += 2
			return token{tokOrOr, "||", start}, nil
		}
		return token{}, fmt.Errorf("bpf: unexpected %q at offset %d", c, start)
	}
	if wordRune(rune(c)) {
		for l.pos < len(l.input) && wordRune(rune(l.input[l.pos])) {
			l.pos++
		}
		text := l.input[start:l.pos]
		kind := tokWord
		if isAllDigits(text) {
			kind = tokNumber
		}
		return token{kind, text, start}, nil
	}
	return token{}, fmt.Errorf("bpf: unexpected %q at offset %d", c, start)
}

func isAllDigits(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}
