package reassembly

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// contentAt gives every sequence position a deterministic byte, so any two
// segments covering the same range carry identical content and every
// overlap policy must produce the same final stream.
func contentAt(seq int64) byte {
	x := uint64(seq)*2654435761 + 0x9e3779b9
	return byte(x >> 7)
}

func fillContent(start int64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = contentAt(start + int64(i))
	}
	return b
}

// TestOracleRandomOverlaps is the strongest assembler property test:
// random overlapping segments with consistent content, shuffled, plus full
// coverage of [0,N) — the final stream must be exactly the oracle bytes,
// for every policy and both modes (no holes can occur with full coverage
// and an adequate buffer budget).
func TestOracleRandomOverlaps(t *testing.T) {
	type testCase struct {
		Total    int
		Policy   Policy
		Mode     Mode
		Segments [][2]int // (start, len) pairs, possibly overlapping
	}
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(v []reflect.Value, r *rand.Rand) {
			total := 200 + r.Intn(4000)
			tc := testCase{
				Total:  total,
				Policy: Policy(r.Intn(6)),
				Mode:   Mode(r.Intn(2)),
			}
			// Random overlapping segments.
			for i := 0; i < r.Intn(30); i++ {
				start := r.Intn(total)
				n := 1 + r.Intn(total-start)
				tc.Segments = append(tc.Segments, [2]int{start, n})
			}
			// Guarantee coverage: contiguous segmentation of [0,total).
			pos := 0
			for pos < total {
				n := 1 + r.Intn(900)
				if pos+n > total {
					n = total - pos
				}
				tc.Segments = append(tc.Segments, [2]int{pos, n})
				pos += n
			}
			r.Shuffle(len(tc.Segments), func(i, j int) {
				tc.Segments[i], tc.Segments[j] = tc.Segments[j], tc.Segments[i]
			})
			v[0] = reflect.ValueOf(tc)
		},
	}
	check := func(tc testCase) bool {
		a := New(Config{
			Mode:                tc.Mode,
			Policy:              tc.Policy,
			MaxBufferedBytes:    1 << 24,
			MaxBufferedSegments: 1 << 16,
		})
		a.Init(0) // first byte at seq 1
		var got []byte
		emit := func(b []byte, hole bool) {
			if hole {
				t.Logf("unexpected hole (mode %v)", tc.Mode)
			}
			got = append(got, b...)
		}
		for _, seg := range tc.Segments {
			start, n := seg[0], seg[1]
			a.Segment(uint32(1+start), fillContent(int64(start), n), emit)
		}
		a.Flush(emit)
		want := fillContent(0, tc.Total)
		if !bytes.Equal(got, want) {
			t.Logf("mode=%v policy=%v total=%d: got %d bytes want %d",
				tc.Mode, tc.Policy, tc.Total, len(got), len(want))
			return false
		}
		return a.PendingBytes() == 0
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestOracleDuplicateStats checks the duplicate accounting against the
// oracle: total input bytes minus unique coverage equals the sum of
// duplicate and overlap-discarded bytes.
func TestOracleDuplicateStats(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 50; trial++ {
		total := 500 + r.Intn(2000)
		a := New(Config{Mode: ModeFast, MaxBufferedBytes: 1 << 22, MaxBufferedSegments: 1 << 14})
		a.Init(0)
		emit := func([]byte, bool) {}
		fed := 0
		pos := 0
		for pos < total {
			n := 1 + r.Intn(400)
			if pos+n > total {
				n = total - pos
			}
			// Send each in-order segment, sometimes twice.
			times := 1 + r.Intn(2)
			for k := 0; k < times; k++ {
				a.Segment(uint32(1+pos), fillContent(int64(pos), n), emit)
				fed += n
			}
			pos += n
		}
		a.Flush(emit)
		st := a.Stats()
		accounted := st.DeliveredBytes + st.DuplicateBytes + st.OverlapNewWins + st.OverlapOldWins
		if accounted != uint64(fed) {
			t.Fatalf("trial %d: fed %d, accounted %d (%+v)", trial, fed, accounted, st)
		}
		if st.DeliveredBytes != uint64(total) {
			t.Fatalf("trial %d: delivered %d, want %d", trial, st.DeliveredBytes, total)
		}
	}
}
