package analysis

import (
	"strings"
	"testing"
)

func TestAtomicField(t *testing.T) {
	_, pkg := loadFixtures(t, "atomicfield")
	diags := checkAnalyzer(t, AtomicField, pkg)

	// The pre-PR-1 Engine.Stats shape: plain counter increment on the
	// packet path, atomic load in the stats getter.
	if got := positionOf(t, diags, "plain write to field frames"); got != "fixtures.go:19:2" {
		t.Errorf("plain write at %s, want fixtures.go:19:2", got)
	}
	// Each finding cross-references where the atomic access lives.
	for _, d := range diags {
		if strings.Contains(d.Message, "plain write to field frames") &&
			!strings.Contains(d.Message, "LoadUint64 at fixtures.go:") {
			t.Errorf("finding lacks the atomic-site cross-reference: %s", d.Message)
		}
	}
	// Alignment findings land on the field declaration and name the fix.
	if got := positionOf(t, diags, "not 8-byte aligned"); got != "fixtures.go:15:2" {
		t.Errorf("alignment finding at %s, want fixtures.go:15:2", got)
	}
	if msg := messageOf(t, diags, "not 8-byte aligned"); !strings.Contains(msg, "offset 20 in engine") {
		t.Errorf("alignment finding lacks the 32-bit offset: %s", msg)
	}
}

// messageOf returns the message of the diagnostic containing substr.
func messageOf(t *testing.T, diags []Diagnostic, substr string) string {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Message, substr) {
			return d.Message
		}
	}
	t.Fatalf("no diagnostic containing %q", substr)
	return ""
}
