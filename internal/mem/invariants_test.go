package mem

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentAccountingInvariants hammers Admit/Reserve/Release from
// several goroutines while a sampler watches the CAS-maintained
// invariants: Used never goes negative, HighWater only moves up, and once
// every reservation has been released the budget is exactly back to zero.
func TestConcurrentAccountingInvariants(t *testing.T) {
	m := New(Config{Size: 1 << 20, Priorities: 4})
	const workers = 8
	const opsPer = 5000

	stop := make(chan struct{})
	var samplerWg sync.WaitGroup
	samplerWg.Add(1)
	go func() {
		defer samplerWg.Done()
		var lastHW int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if u := m.Used(); u < 0 {
				t.Errorf("Used = %d, went negative", u)
				return
			}
			if hw := m.Stats().HighWater; hw < lastHW {
				t.Errorf("HighWater moved backwards: %d -> %d", lastHW, hw)
				return
			} else {
				lastHW = hw
			}
		}
	}()

	var admits atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPer; i++ {
				size := 1 + r.Intn(4096)
				if r.Intn(2) == 0 {
					if m.Admit(r.Intn(4), int64(r.Intn(1<<20)), size) == Admit {
						admits.Add(1)
						m.Release(size)
					}
				} else {
					// Reserve is unconditional; it must always be paired
					// with a release regardless of the over-budget report.
					m.Reserve(size)
					m.Release(size)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	samplerWg.Wait()

	if u := m.Used(); u != 0 {
		t.Errorf("Used = %d after balanced releases, want 0", u)
	}
	st := m.Stats()
	if st.Admitted != admits.Load() {
		t.Errorf("Stats.Admitted = %d, want %d", st.Admitted, admits.Load())
	}
	if st.HighWater <= 0 {
		t.Errorf("HighWater = %d, want > 0", st.HighWater)
	}
}

// TestAdmitNeverOverbooks holds reservations (no releases) while many
// goroutines admit concurrently: the CAS commit means the joint
// reservations can never exceed the budget.
func TestAdmitNeverOverbooks(t *testing.T) {
	m := New(Config{Size: 1 << 16, BaseThreshold: 1.0})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(100 + int64(w)))
			for i := 0; i < 2000; i++ {
				m.Admit(0, 0, 1+r.Intn(1024))
			}
		}(w)
	}
	wg.Wait()
	if u, sz := m.Used(), m.Size(); u > sz {
		t.Errorf("Used = %d exceeds budget %d", u, sz)
	}
	if st := m.Stats(); st.HighWater > m.Size() {
		t.Errorf("HighWater = %d exceeds budget %d", st.HighWater, m.Size())
	}
}
