package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// pcap file constants (libpcap classic format).
const (
	pcapMagicMicros = 0xa1b2c3d4
	pcapMagicNanos  = 0xa1b23c4d
	pcapVersionMaj  = 2
	pcapVersionMin  = 4
	pcapLinkEth     = 1
	pcapHeaderLen   = 24
	pcapRecordLen   = 16
)

// ErrNotPcap reports a bad magic number.
var ErrNotPcap = errors.New("trace: not a pcap file")

// PcapWriter streams frames into a classic pcap file with nanosecond
// timestamps.
type PcapWriter struct {
	w       *bufio.Writer
	snaplen int
	wrote   bool
}

// NewPcapWriter creates a writer; snaplen 0 means no truncation (65535).
func NewPcapWriter(w io.Writer, snaplen int) *PcapWriter {
	if snaplen <= 0 {
		snaplen = 65535
	}
	return &PcapWriter{w: bufio.NewWriterSize(w, 1<<16), snaplen: snaplen}
}

func (pw *PcapWriter) writeHeader() error {
	var h [pcapHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:4], pcapMagicNanos)
	binary.LittleEndian.PutUint16(h[4:6], pcapVersionMaj)
	binary.LittleEndian.PutUint16(h[6:8], pcapVersionMin)
	binary.LittleEndian.PutUint32(h[16:20], uint32(pw.snaplen))
	binary.LittleEndian.PutUint32(h[20:24], pcapLinkEth)
	_, err := pw.w.Write(h[:])
	return err
}

// Write appends one frame captured at ts (nanoseconds).
func (pw *PcapWriter) Write(frame []byte, ts int64) error {
	if !pw.wrote {
		if err := pw.writeHeader(); err != nil {
			return err
		}
		pw.wrote = true
	}
	capLen := len(frame)
	if capLen > pw.snaplen {
		capLen = pw.snaplen
	}
	var rec [pcapRecordLen]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts/1e9))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(ts%1e9))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(capLen))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(frame[:capLen])
	return err
}

// Flush drains buffered output. Writers over files must Flush before close.
func (pw *PcapWriter) Flush() error {
	if !pw.wrote {
		if err := pw.writeHeader(); err != nil {
			return err
		}
		pw.wrote = true
	}
	return pw.w.Flush()
}

// PcapReader iterates a classic pcap file (microsecond or nanosecond,
// either byte order).
type PcapReader struct {
	r       *bufio.Reader
	order   binary.ByteOrder
	nanos   bool
	snaplen int
	started bool
	// arena amortizes per-record allocation: frames are carved from a
	// block that is never recycled, so ownership of each returned slice
	// still transfers to the caller (the capture path injects them
	// without copying).
	arena []byte
}

// arenaBlock is the allocation granularity for frame carving; records
// larger than this get a dedicated allocation.
const arenaBlock = 256 << 10

// NewPcapReader wraps r.
func NewPcapReader(r io.Reader) *PcapReader {
	return &PcapReader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (pr *PcapReader) readHeader() error {
	var h [pcapHeaderLen]byte
	if _, err := io.ReadFull(pr.r, h[:]); err != nil {
		return fmt.Errorf("trace: pcap header: %w", err)
	}
	magicLE := binary.LittleEndian.Uint32(h[0:4])
	magicBE := binary.BigEndian.Uint32(h[0:4])
	switch {
	case magicLE == pcapMagicMicros:
		pr.order = binary.LittleEndian
	case magicLE == pcapMagicNanos:
		pr.order, pr.nanos = binary.LittleEndian, true
	case magicBE == pcapMagicMicros:
		pr.order = binary.BigEndian
	case magicBE == pcapMagicNanos:
		pr.order, pr.nanos = binary.BigEndian, true
	default:
		return fmt.Errorf("%w: magic %#08x", ErrNotPcap, magicLE)
	}
	pr.snaplen = int(pr.order.Uint32(h[16:20]))
	if link := pr.order.Uint32(h[20:24]); link != pcapLinkEth {
		return fmt.Errorf("trace: unsupported link type %d", link)
	}
	pr.started = true
	return nil
}

// Next returns the next frame and timestamp; io.EOF at end of file. The
// returned slice is owned by the caller: it is carved from an arena block
// the reader never writes again.
func (pr *PcapReader) Next() ([]byte, int64, error) {
	if !pr.started {
		if err := pr.readHeader(); err != nil {
			return nil, 0, err
		}
	}
	var rec [pcapRecordLen]byte
	if _, err := io.ReadFull(pr.r, rec[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, io.EOF
		}
		return nil, 0, err
	}
	sec := int64(pr.order.Uint32(rec[0:4]))
	sub := int64(pr.order.Uint32(rec[4:8]))
	ts := sec * 1e9
	if pr.nanos {
		ts += sub
	} else {
		ts += sub * 1000
	}
	capLen := int(pr.order.Uint32(rec[8:12]))
	if capLen < 0 || capLen > 256<<10 {
		return nil, 0, fmt.Errorf("trace: implausible capture length %d", capLen)
	}
	if capLen > len(pr.arena) {
		n := arenaBlock
		if capLen > n {
			n = capLen
		}
		pr.arena = make([]byte, n)
	}
	frame := pr.arena[:capLen:capLen]
	pr.arena = pr.arena[capLen:]
	if _, err := io.ReadFull(pr.r, frame); err != nil {
		return nil, 0, fmt.Errorf("trace: truncated record: %w", err)
	}
	return frame, ts, nil
}
