// Flowexport: a Time-Machine-style selective recorder (paper §6.6 and the
// related-work discussion of per-flow cutoffs). It captures only the first
// 10 KB of every stream — enforced inside the capture core, with FDIR drop
// filters discarding the long tails at the (simulated) NIC — and writes
// the captured stream prefixes plus an index of flow records.
//
// Usage:
//
//	flowexport [trace.pcap]   # without an argument, uses a synthetic trace
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"scap"
	"scap/internal/trace"
)

const cutoff = 10 << 10

func main() {
	h, err := scap.Create(scap.Config{
		ReassemblyMode: scap.TCPFast,
		UseFDIR:        true, // drop tails at the NIC (subzero copy)
		Queues:         2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := h.SetCutoff(cutoff); err != nil {
		log.Fatal(err)
	}
	// DNS is small and precious: keep it unabridged.
	if err := h.AddCutoffClass(scap.CutoffUnlimited, "udp port 53"); err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	captured := map[uint64]int{}
	h.DispatchData(func(sd *scap.Stream) {
		mu.Lock()
		captured[sd.ID()] += len(sd.Data)
		mu.Unlock()
		// A real recorder would write sd.Data to its spool here.
	})
	var index []string
	h.DispatchTermination(func(sd *scap.Stream) {
		mu.Lock()
		index = append(index, fmt.Sprintf("%-48s est=%-10d stored=%-8d %s",
			sd.Key(), sd.EstimatedBytes(), captured[sd.ID()], sd.Status()))
		delete(captured, sd.ID())
		mu.Unlock()
	})

	if err := h.StartCapture(); err != nil {
		log.Fatal(err)
	}
	if len(os.Args) > 1 {
		err = h.ReplayPcap(os.Args[1])
	} else {
		gen := trace.NewGenerator(trace.GenConfig{
			Seed: 11, Flows: 300, Concurrency: 32,
			Alpha: 0.8, MaxFlowBytes: 8 << 20, TCPFraction: 0.9,
		})
		err = h.ReplaySource(gen, 1e9)
	}
	if err != nil {
		log.Fatal(err)
	}
	h.Close()

	for i, line := range index {
		if i >= 15 {
			fmt.Printf("  ... and %d more\n", len(index)-15)
			break
		}
		fmt.Println(" ", line)
	}
	stats, _ := h.GetStats()
	total := stats.PayloadBytes
	kept := stats.StoredBytes
	fmt.Printf("\nrecorded %d of %d payload bytes (%.1f%%) across %d streams\n",
		kept, total, float64(kept)/float64(total)*100, stats.StreamsCreated)
	fmt.Printf("dropped before reaching memory (FDIR): %d frames; discarded in-kernel: %d packets\n",
		stats.DroppedAtNIC, stats.CutoffPkts)
}
