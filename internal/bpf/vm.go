package bpf

import (
	"net/netip"

	"scap/internal/pkt"
)

// opcode identifies one VM instruction. Match* opcodes push a boolean;
// logical opcodes combine stack values; jump opcodes implement
// short-circuit evaluation.
type opcode uint8

const (
	opTrue opcode = iota
	opProto
	opIPVersion
	opPort       // lo..hi against src/dst per dir, requires TCP/UDP
	opHost       // addr against src/dst per dir
	opNet        // prefix against src/dst per dir
	opLenLess    // WireLen <= limit
	opLenGreater // WireLen >= limit
	opByteCmp    // tcpdump-style proto[off] accessor comparison
	opVLAN       // 802.1Q tag presence / id match
	opNot
	// opJumpIfFalse / opJumpIfTrue peek the top of stack and skip arg
	// instructions when it matches, popping the value only when jumping is
	// not taken. They encode && and || without re-evaluating operands.
	opJumpIfFalse
	opJumpIfTrue
)

type instr struct {
	op     opcode
	dir    dirQual
	proto  uint8
	lo, hi uint16
	limit  int32
	addr   netip.Addr
	prefix netip.Prefix
	bex    *byteExprNode // opByteCmp payload
}

// Program is a compiled filter: a flat instruction sequence evaluated with a
// tiny boolean stack. Programs are immutable and safe for concurrent use.
type Program []instr

// compile lowers the AST to instructions. For and/or, the left operand is
// evaluated first and a conditional jump skips the right operand, leaving
// the left's value as the result (short-circuit semantics identical to the
// AST evaluator).
func compile(n node) Program {
	var prog Program
	prog = emit(prog, n)
	return prog
}

func emit(prog Program, n node) Program {
	switch n := n.(type) {
	case trueNode:
		return append(prog, instr{op: opTrue})
	case *andNode:
		prog = emit(prog, n.left)
		jumpAt := len(prog)
		prog = append(prog, instr{op: opJumpIfFalse})
		prog = emit(prog, n.right)
		prog[jumpAt].limit = int32(len(prog) - jumpAt - 1)
		return prog
	case *orNode:
		prog = emit(prog, n.left)
		jumpAt := len(prog)
		prog = append(prog, instr{op: opJumpIfTrue})
		prog = emit(prog, n.right)
		prog[jumpAt].limit = int32(len(prog) - jumpAt - 1)
		return prog
	case *notNode:
		prog = emit(prog, n.inner)
		return append(prog, instr{op: opNot})
	case *protoNode:
		return append(prog, instr{op: opProto, proto: n.proto})
	case *ipVersionNode:
		return append(prog, instr{op: opIPVersion, proto: n.version})
	case *portNode:
		return append(prog, instr{op: opPort, dir: n.dir, lo: n.lo, hi: n.hi})
	case *hostNode:
		return append(prog, instr{op: opHost, dir: n.dir, addr: n.addr})
	case *netNode:
		return append(prog, instr{op: opNet, dir: n.dir, prefix: n.prefix})
	case *lenNode:
		op := opLenGreater
		if n.less {
			op = opLenLess
		}
		return append(prog, instr{op: op, limit: int32(n.limit)})
	case *byteExprNode:
		return append(prog, instr{op: opByteCmp, bex: n})
	case *vlanNode:
		return append(prog, instr{op: opVLAN, limit: int32(n.id)})
	}
	panic("bpf: unknown AST node")
}

// Match runs the program against a decoded packet.
func (prog Program) Match(p *pkt.Packet) bool {
	// Expression nesting rarely exceeds a handful of levels; the backing
	// array keeps typical evaluations allocation-free while append handles
	// pathological depth correctly.
	var arr [32]bool
	stack := arr[:0]
	for i := 0; i < len(prog); i++ {
		in := &prog[i]
		switch in.op {
		case opTrue:
			stack = append(stack, true)
		case opProto:
			stack = append(stack, p.Key.Proto == in.proto)
		case opIPVersion:
			stack = append(stack, p.IPVersion == in.proto)
		case opPort:
			stack = append(stack, matchPort(p, in))
		case opHost:
			stack = append(stack, matchEndpoint(in.dir,
				p.Key.SrcIP == in.addr, p.Key.DstIP == in.addr))
		case opNet:
			stack = append(stack, matchEndpoint(in.dir,
				in.prefix.Contains(p.Key.SrcIP), in.prefix.Contains(p.Key.DstIP)))
		case opLenLess:
			stack = append(stack, p.WireLen <= int(in.limit))
		case opLenGreater:
			stack = append(stack, p.WireLen >= int(in.limit))
		case opByteCmp:
			stack = append(stack, in.bex.eval(p))
		case opVLAN:
			stack = append(stack, p.HasVLAN && (in.limit < 0 || p.VLANID == uint16(in.limit)))
		case opNot:
			stack[len(stack)-1] = !stack[len(stack)-1]
		case opJumpIfFalse:
			if !stack[len(stack)-1] {
				i += int(in.limit)
			} else {
				stack = stack[:len(stack)-1] // discard left; right replaces it
			}
		case opJumpIfTrue:
			if stack[len(stack)-1] {
				i += int(in.limit)
			} else {
				stack = stack[:len(stack)-1]
			}
		}
	}
	return len(stack) > 0 && stack[len(stack)-1]
}

func matchPort(p *pkt.Packet, in *instr) bool {
	if p.Key.Proto != pkt.ProtoTCP && p.Key.Proto != pkt.ProtoUDP {
		return false
	}
	return matchEndpoint(in.dir,
		p.Key.SrcPort >= in.lo && p.Key.SrcPort <= in.hi,
		p.Key.DstPort >= in.lo && p.Key.DstPort <= in.hi)
}

func matchEndpoint(dir dirQual, srcOK, dstOK bool) bool {
	switch dir {
	case dirSrc:
		return srcOK
	case dirDst:
		return dstOK
	}
	return srcOK || dstOK
}
