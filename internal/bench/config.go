package bench

import (
	"scap/internal/match"
	"scap/internal/trace"
)

// Config scales the reproduction. Defaults produce a ~125 MB synthetic
// trace (the paper replays 46 GB; the buffer sizes below keep the same
// operating regime at this scale — see internal/sim's documentation).
type Config struct {
	Seed     int64
	Flows    int
	Patterns int
	// MaxFlowBytes caps individual flow sizes (0: 20 MB).
	MaxFlowBytes int
	// Quick trims the sweeps (fewer rates / cutoffs) for fast runs.
	Quick bool

	RingBytes int
	MemBytes  int64
}

// DefaultConfig returns the full-scale settings: a ~230 MB trace whose
// largest flow is a few percent of the total bytes (on the paper's 46 GB
// trace no single flow dominates a core; at small scale an unsplittable
// elephant would cap the Figure 10 scaling artificially).
func DefaultConfig() Config {
	return Config{
		Seed:         77,
		Flows:        20000,
		MaxFlowBytes: 8 << 20,
		Patterns:     2120, // the paper's web-attack rule count
		RingBytes:    4 << 20,
		MemBytes:     24 << 20,
	}
}

// QuickConfig returns a configuration for smoke runs: a ~25 MB trace with
// ring and stream memory scaled down with it (buffers larger than the
// whole trace would mask every overload effect).
func QuickConfig() Config {
	c := DefaultConfig()
	c.Flows = 2000
	c.MaxFlowBytes = 2 << 20
	c.Patterns = 400
	c.RingBytes = 1 << 20
	c.MemBytes = 4 << 20
	c.Quick = true
	return c
}

// Runner owns the generated workload (built once, replayed per run) and
// the compiled pattern set.
type Runner struct {
	cfg     Config
	frames  *trace.SliceSource
	gen     *trace.Generator
	matcher *match.Matcher
}

// NewRunner generates the workload.
func NewRunner(cfg Config) (*Runner, error) {
	patterns := Patterns(cfg.Patterns)
	m, err := match.New(patterns)
	if err != nil {
		return nil, err
	}
	maxFlow := cfg.MaxFlowBytes
	if maxFlow <= 0 {
		maxFlow = 20 << 20
	}
	gen := trace.NewGenerator(trace.GenConfig{
		Seed:          cfg.Seed,
		Flows:         cfg.Flows,
		Concurrency:   128,
		Alpha:         0.8,
		MinFlowBytes:  400,
		MaxFlowBytes:  maxFlow,
		EmbedPatterns: patterns,
		EmbedProb:     0.5,
	})
	frames := &trace.SliceSource{Frames: trace.Collect(gen, 0)}
	return &Runner{cfg: cfg, frames: frames, gen: gen, matcher: m}, nil
}

// Source rewinds and returns the shared workload.
func (r *Runner) Source() *trace.SliceSource {
	r.frames.Reset()
	return r.frames
}

// Generator exposes workload totals (flows, embedded patterns).
func (r *Runner) Generator() *trace.Generator { return r.gen }

// Matcher exposes the compiled pattern set.
func (r *Runner) Matcher() *match.Matcher { return r.matcher }

// TraceBytes returns the workload's total wire bytes.
func (r *Runner) TraceBytes() uint64 { return r.gen.Bytes }

// Patterns deterministically synthesizes n attack-like strings (8–19
// bytes over a distinctive alphabet so spontaneous matches in random
// payload are negligible) — the stand-in for the paper's 2,120 strings
// extracted from the Snort VRT "web attack" rules.
func Patterns(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, 8+i%12)
		x := uint32(i)*2654435761 + 12345
		for j := range p {
			x = x*1664525 + 1013904223
			p[j] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ#$%"[x%29]
		}
		out[i] = p
	}
	return out
}

// rates returns the figure sweep in Gbit/s.
func (r *Runner) rates() []float64 {
	if r.cfg.Quick {
		return []float64{0.5, 1, 2, 4, 6}
	}
	return []float64{0.25, 0.5, 1, 1.5, 2, 2.5, 3, 4, 5, 5.5, 6}
}

const gbit = 1e9
