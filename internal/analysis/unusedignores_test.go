package analysis

import "testing"

// TestUnusedIgnores runs a real analyzer over the fixture so directives
// can genuinely fire (or not), then checks the stale-suppression pass
// against the fixture's want comments.
func TestUnusedIgnores(t *testing.T) {
	_, pkg := loadFixtures(t, "unusedignores")
	res := Run([]*Package{pkg}, []*Analyzer{HotPathLock})
	matchWants(t, pkg, UnusedIgnoreDiagnostics(res, All()))

	// The healthy directive (named analyzer, justified, fired) must be
	// recorded as used and produce no finding.
	var healthy *IgnoreInfo
	for i := range res.Ignores {
		if res.Ignores[i].Reason == "audited: slow-path fallback taken once per epoch" {
			healthy = &res.Ignores[i]
		}
	}
	if healthy == nil {
		t.Fatal("healthy directive not collected")
	}
	if !healthy.Used || healthy.Analyzer != "hotpathlock" {
		t.Errorf("healthy directive misparsed: %+v", healthy)
	}
}
