// Package queueing implements the analytic models of paper §7: the
// M/M/1/N loss formula behind Figure 11 and the multi-priority birth-death
// chain behind Figure 12, which predict at what free-memory threshold PPL
// stops dropping important packets.
//
// The paper prints closed forms for the two- and three-priority cases; we
// solve the general n-priority chain exactly from its stationary
// distribution (the printed three-priority constants contain typesetting
// glitches — e.g. a ρ^(N/3) factor — so the exact chain, cross-validated
// by Monte-Carlo simulation in the tests, is the implementation of record).
package queueing

import (
	"errors"
	"math"
	"math/rand"
)

// MM1NLoss returns the steady-state loss probability of an M/M/1/N queue
// with offered load rho = λ/μ: the probability an arriving packet finds
// all N slots full (PASTA), equation (1) of the paper.
func MM1NLoss(rho float64, n int) float64 {
	if n <= 0 {
		return 1
	}
	if rho < 0 {
		return 0
	}
	if math.Abs(rho-1) < 1e-12 {
		return 1 / float64(n+1)
	}
	num := (1 - rho) * math.Pow(rho, float64(n))
	den := 1 - math.Pow(rho, float64(n+1))
	return num / den
}

// ErrBadInput reports invalid model parameters.
var ErrBadInput = errors.New("queueing: invalid parameters")

// PriorityLoss solves the PPL birth-death chain for p priority classes
// (index 0 = lowest) with per-class offered loads rhos[i] = λ_i/μ and N
// memory slots per watermark region (p regions, p*N states above empty).
//
// Arrivals of class i are admitted only while the occupancy is below
// (i+1)*N; the return value is each class's loss probability: the
// stationary probability that occupancy is at or above its admission
// boundary.
func PriorityLoss(rhos []float64, n int) ([]float64, error) {
	p := len(rhos)
	if p == 0 || n <= 0 {
		return nil, ErrBadInput
	}
	for _, r := range rhos {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, ErrBadInput
		}
	}
	// regionLoad[i] is the total offered load while occupancy is inside
	// region i (classes i..p-1 still arriving).
	regionLoad := make([]float64, p)
	for i := 0; i < p; i++ {
		sum := 0.0
		for j := i; j < p; j++ {
			sum += rhos[j]
		}
		regionLoad[i] = sum
	}
	// Stationary weights w[k] ∝ Π birth/death ratios; computed iteratively
	// to avoid overflow for large n (normalize on the fly).
	states := p*n + 1
	w := make([]float64, states)
	w[0] = 1
	total := 1.0
	for k := 1; k < states; k++ {
		region := (k - 1) / n
		w[k] = w[k-1] * regionLoad[region]
		total += w[k]
		if total > 1e300 { // rescale to stay finite
			for j := 0; j <= k; j++ {
				w[j] /= 1e300
			}
			total /= 1e300
		}
	}
	// Loss of class i = P(occupancy >= (i+1)*n).
	out := make([]float64, p)
	for i := 0; i < p; i++ {
		boundary := (i + 1) * n
		sum := 0.0
		for k := boundary; k < states; k++ {
			sum += w[k]
		}
		out[i] = sum / total
	}
	return out, nil
}

// TwoPriorityLoss returns the (low, high) loss probabilities for the
// two-priority chain in closed form, derived from the stationary
// distribution of the 2N-state birth-death chain of paper §7:
//
//	π_k = π_0·ρ12^k                 for 0 ≤ k ≤ N
//	π_k = π_0·ρ12^N·ρ2^(k-N)        for N < k ≤ 2N
//
// with ρ12 = (λ1+λ2)/μ and ρ2 = λ2/μ. High-priority loss is π_2N (PASTA);
// low-priority loss is P(occupancy ≥ N). It cross-checks PriorityLoss.
func TwoPriorityLoss(rho1, rho2 float64, n int) (low, high float64) {
	if n <= 0 {
		return 1, 1
	}
	rho12 := rho1 + rho2
	// Stationary weights, computed iteratively for numerical robustness.
	w := 1.0
	total := 1.0
	var tailFromN float64
	for k := 1; k <= 2*n; k++ {
		if k <= n {
			w *= rho12
		} else {
			w *= rho2
		}
		total += w
		if k >= n {
			tailFromN += w
		}
	}
	return tailFromN / total, w / total
}

// SimulatePriorityLoss estimates the same loss probabilities by simulating
// the chain: exponential inter-arrivals per class and exponential service.
// It exists to validate PriorityLoss and for scenarios outside the
// Markovian assumptions.
func SimulatePriorityLoss(rhos []float64, n int, events int, seed int64) []float64 {
	p := len(rhos)
	rng := rand.New(rand.NewSource(seed))
	total := 0.0
	for _, r := range rhos {
		total += r
	}
	mu := 1.0
	occupancy := 0
	arrivals := make([]float64, p)
	losses := make([]float64, p)
	// Next event times.
	next := make([]float64, p)
	for i := range next {
		if rhos[i] > 0 {
			next[i] = rng.ExpFloat64() / rhos[i]
		} else {
			next[i] = math.Inf(1)
		}
	}
	nextSvc := math.Inf(1)
	now := 0.0
	for e := 0; e < events; e++ {
		// Find earliest event.
		minI := -1
		minT := nextSvc
		for i, t := range next {
			if t < minT {
				minT, minI = t, i
			}
		}
		now = minT
		if minI < 0 {
			// Service completion.
			occupancy--
			if occupancy > 0 {
				nextSvc = now + rng.ExpFloat64()/mu
			} else {
				nextSvc = math.Inf(1)
			}
			continue
		}
		// Arrival of class minI.
		arrivals[minI]++
		if occupancy >= (minI+1)*n {
			losses[minI]++
		} else {
			occupancy++
			if occupancy == 1 {
				nextSvc = now + rng.ExpFloat64()/mu
			}
		}
		next[minI] = now + rng.ExpFloat64()/rhos[minI]
	}
	out := make([]float64, p)
	for i := range out {
		if arrivals[i] > 0 {
			out[i] = losses[i] / arrivals[i]
		}
	}
	return out
}
