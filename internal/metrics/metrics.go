// Package metrics is the capture path's observability substrate: a
// dependency-free registry of live counters, gauges, and histograms that the
// hot path can update with single uncontended atomic operations while any
// goroutine assembles consistent-enough snapshots, windowed rates, and typed
// overload events without stalling it.
//
// The design splits every instrument into a registration-time half and an
// update-time half:
//
//   - Registration (NewCounter, NewGauge, NewHistogram, ...) happens once,
//     outside the per-packet path, under the registry mutex. The scaplint
//     metricreg analyzer enforces this split statically.
//   - Updates go through pre-bound handles: a per-core Counter hands each
//     engine its own *Cell (one slot in that core's padded slab), so an
//     increment is exactly one atomic add on a cache line no other core
//     writes. Gauges and histogram observations are likewise single atomic
//     operations.
//
// Per-core counters are laid out as one slab per core rather than one padded
// cell per metric: all of a core's counters stay contiguous (the engine's
// working set spans a few lines, not one line per counter) while different
// cores' slabs are separate allocations, so there is no false sharing between
// cores. Readers sum the per-core cells on demand; like /proc counters, a
// snapshot taken mid-burst may lag individual fields by a packet.
package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Desc names and documents one metric. Name is the wire identifier
// (snake_case, e.g. "packets_total"); Unit is the measured unit ("packets",
// "bytes", "ns"); Paper optionally names the paper counterpart the metric
// reproduces (e.g. "Fig. 9 dropped packets per priority"). Family groups
// related metrics into one logical table ("drops"), with Cause naming the
// member within it ("ppl", "cutoff", "ring_full", ...), so consumers can
// render attribution tables without hard-coding every metric name.
type Desc struct {
	Name   string `json:"name"`
	Help   string `json:"help,omitempty"`
	Unit   string `json:"unit,omitempty"`
	Paper  string `json:"paper,omitempty"`
	Family string `json:"family,omitempty"`
	Cause  string `json:"cause,omitempty"`
}

// nanotimeBase anchors the capture clock: Nanotime reads are monotonic
// offsets from process start, consistent across goroutines.
var nanotimeBase = time.Now()

// Nanotime returns monotonic nanoseconds since process start. It is the
// capture clock for stage-latency stamps: alloc-free, lock-free, and safe in
// //scap:hotpath code (unlike time.Now, whose wall-clock reading the
// hotpathalloc analyzer bans there).
//
//scap:hotpath
func Nanotime() int64 { return int64(time.Since(nanotimeBase)) }

// slabSlots bounds how many per-core counters one registry can hold. The
// slabs are pre-allocated at this capacity so Cell pointers handed to the
// hot path are never invalidated by registration-time growth.
const slabSlots = 256

// Cell is one core's slot of a per-core Counter. The owning core updates it
// with single atomic adds; any goroutine may Load it.
//
//scap:atomics
type Cell struct {
	n atomic.Uint64
}

// Add increments the cell by d.
//
//scap:hotpath
func (c *Cell) Add(d uint64) { c.n.Add(d) }

// Inc increments the cell by one.
//
//scap:hotpath
func (c *Cell) Inc() { c.n.Add(1) }

// Load returns the cell's current value.
func (c *Cell) Load() uint64 { return c.n.Load() }

// Counter is a monotonically increasing per-core counter. Writers bind their
// core's Cell once (outside the hot path) and increment it with atomic adds;
// Total and PerCore sum the cells on demand.
type Counter struct {
	desc Desc
	reg  *Registry
	slot int
}

// Desc returns the counter's metadata.
func (c *Counter) Desc() Desc { return c.desc }

// Cell returns the cell owned by core. Bind it once at setup; do not call
// this on the per-packet path.
func (c *Counter) Cell(core int) *Cell {
	return &c.reg.slabs[core][c.slot]
}

// Total sums the per-core cells.
func (c *Counter) Total() uint64 {
	var t uint64
	for core := range c.reg.slabs {
		t += c.reg.slabs[core][c.slot].Load()
	}
	return t
}

// PerCore appends each core's value to dst and returns it.
func (c *Counter) PerCore(dst []uint64) []uint64 {
	for core := range c.reg.slabs {
		dst = append(dst, c.reg.slabs[core][c.slot].Load())
	}
	return dst
}

// Gauge is an instantaneous value set or adjusted atomically.
type Gauge struct {
	desc Desc
	v    atomic.Int64
}

// Desc returns the gauge's metadata.
func (g *Gauge) Desc() Desc { return g.desc }

// Set stores v.
//
//scap:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
//
//scap:hotpath
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the gauge's current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// funcGauge reads its value from a callback at snapshot time — for values
// another subsystem already maintains (e.g. the memory manager's atomic
// usage counter) that should appear in the registry without double
// bookkeeping.
type funcGauge struct {
	desc Desc
	fn   func() int64
}

// funcCounter is funcGauge for monotone counters kept elsewhere. perCore,
// when set, appends the per-core breakdown at snapshot time.
type funcCounter struct {
	desc    Desc
	fn      func() uint64
	perCore func(dst []uint64) []uint64
}

// Registry is the central metric index of one capture socket. Registration
// serializes on mu; updates never touch it. The zero value is not usable —
// create registries with NewRegistry.
type Registry struct {
	cores int
	now   func() int64

	mu       sync.Mutex
	slabs    [][]Cell // one pre-allocated slab per core
	nextSlot int
	byName   map[string]bool
	counters []*Counter
	fcs      []*funcCounter
	gauges   []*Gauge
	fgs      []*funcGauge
	hists    []*Histogram
	events   *EventLog
	flight   *FlightRecorder
}

// NewRegistry creates a registry for the given number of cores (per-core
// counters get one cell per core; at least one).
func NewRegistry(cores int) *Registry {
	if cores < 1 {
		cores = 1
	}
	r := &Registry{
		cores:  cores,
		now:    func() int64 { return time.Now().UnixNano() },
		slabs:  make([][]Cell, cores),
		byName: make(map[string]bool),
	}
	for i := range r.slabs {
		r.slabs[i] = make([]Cell, slabSlots)
	}
	r.events = newEventLog(defaultEventCap, &r.now)
	r.flight = newFlightRecorder(cores, defaultFlightCap, &r.now)
	return r
}

// SetClock replaces the wall clock (unix nanoseconds) used to stamp
// snapshots and events — tests inject a synthetic clock here. Call it before
// the registry is shared.
func (r *Registry) SetClock(now func() int64) { r.now = now }

// Cores returns the number of per-core cells each counter carries.
func (r *Registry) Cores() int { return r.cores }

// register reserves a metric name or panics: duplicate registration is a
// programming error, caught at startup.
func (r *Registry) register(d Desc) {
	if d.Name == "" {
		panic("metrics: empty metric name")
	}
	if r.byName[d.Name] {
		panic(fmt.Sprintf("metrics: duplicate metric %q", d.Name))
	}
	r.byName[d.Name] = true
}

// NewCounter registers a per-core counter. It panics on duplicate names or
// when the slab capacity is exhausted. Registration only; not hot-path safe.
func (r *Registry) NewCounter(d Desc) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(d)
	if r.nextSlot >= slabSlots {
		panic("metrics: per-core counter slab exhausted")
	}
	c := &Counter{desc: d, reg: r, slot: r.nextSlot}
	r.nextSlot++
	r.counters = append(r.counters, c)
	return c
}

// NewCounterFunc registers a counter whose value is read from fn at snapshot
// time (no per-core breakdown). fn must be safe to call from any goroutine.
func (r *Registry) NewCounterFunc(d Desc, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(d)
	r.fcs = append(r.fcs, &funcCounter{desc: d, fn: fn})
}

// NewCounterFuncPerCore registers a func-backed counter that also exposes a
// per-core breakdown: perCore appends one value per core to dst. Both
// callbacks must be safe to call from any goroutine.
func (r *Registry) NewCounterFuncPerCore(d Desc, fn func() uint64, perCore func(dst []uint64) []uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(d)
	r.fcs = append(r.fcs, &funcCounter{desc: d, fn: fn, perCore: perCore})
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(d Desc) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(d)
	g := &Gauge{desc: d}
	r.gauges = append(r.gauges, g)
	return g
}

// NewGaugeFunc registers a gauge whose value is read from fn at snapshot
// time. fn must be safe to call from any goroutine.
func (r *Registry) NewGaugeFunc(d Desc, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(d)
	r.fgs = append(r.fgs, &funcGauge{desc: d, fn: fn})
}

// NewHistogram registers a power-of-two histogram with buckets
// le 2^0, 2^1, ..., 2^maxPow plus an overflow bucket.
func (r *Registry) NewHistogram(d Desc, maxPow int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(d)
	h := newHistogram(d, r.cores, maxPow)
	r.hists = append(r.hists, h)
	return h
}

// Events returns the registry's overload event log.
func (r *Registry) Events() *EventLog { return r.events }

// Flight returns the registry's flight recorder. Bind it once at setup; the
// only method safe on the per-packet path is FlightRecorder.Note.
func (r *Registry) Flight() *FlightRecorder { return r.flight }

// CounterSnap is one counter's snapshot: the summed total plus the per-core
// breakdown (nil for func-backed counters).
type CounterSnap struct {
	Desc
	Total   uint64   `json:"total"`
	PerCore []uint64 `json:"per_core,omitempty"`
}

// GaugeSnap is one gauge's snapshot.
type GaugeSnap struct {
	Desc
	Value int64 `json:"value"`
}

// Snapshot is a point-in-time view of every registered metric. Counters are
// read atomically one by one; the snapshot as a whole is not a consistent
// cut while updates are in flight (the /proc-counters model).
type Snapshot struct {
	TimeUnixNano int64           `json:"time_unix_nano"`
	Counters     []CounterSnap   `json:"counters"`
	Gauges       []GaugeSnap     `json:"gauges"`
	Histograms   []HistogramSnap `json:"histograms"`
	Events       []Event         `json:"events"`
}

// Snapshot collects the current value of every metric, in registration
// order, plus the buffered overload events (oldest first).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{TimeUnixNano: r.now()}
	for _, c := range r.counters {
		pc := c.PerCore(make([]uint64, 0, r.cores))
		var t uint64
		for _, v := range pc {
			t += v
		}
		s.Counters = append(s.Counters, CounterSnap{Desc: c.desc, Total: t, PerCore: pc})
	}
	for _, fc := range r.fcs {
		cs := CounterSnap{Desc: fc.desc, Total: fc.fn()}
		if fc.perCore != nil {
			cs.PerCore = fc.perCore(make([]uint64, 0, r.cores))
		}
		s.Counters = append(s.Counters, cs)
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Desc: g.desc, Value: g.Load()})
	}
	for _, fg := range r.fgs {
		s.Gauges = append(s.Gauges, GaugeSnap{Desc: fg.desc, Value: fg.fn()})
	}
	for _, h := range r.hists {
		s.Histograms = append(s.Histograms, h.snapshot())
	}
	s.Events = r.events.Snapshot()
	return s
}

// CounterTotal returns the total of the named counter in the snapshot, or 0
// when absent.
func (s *Snapshot) CounterTotal(name string) uint64 {
	for i := range s.Counters {
		if s.Counters[i].Name == name {
			return s.Counters[i].Total
		}
	}
	return 0
}

// GaugeValue returns the named gauge's value in the snapshot, or 0 when
// absent.
func (s *Snapshot) GaugeValue(name string) int64 {
	for i := range s.Gauges {
		if s.Gauges[i].Name == name {
			return s.Gauges[i].Value
		}
	}
	return 0
}
