package nic

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"scap/internal/metrics"
	"scap/internal/pcapring"
	"scap/internal/pkt"
	"scap/internal/trace"
)

// PcapReplayConfig configures the file-backed replay backend.
type PcapReplayConfig struct {
	// Path is the classic-pcap trace file to replay.
	Path string
	// Queues is the number of receive queues (software RSS spreads flows
	// over them). Default 1.
	Queues int
	// RingBytes bounds each per-queue staging ring in bytes, modeling the
	// PF_PACKET shared ring: when a queue's consumer falls behind by more
	// than this, arriving frames for that queue are dropped and counted.
	// Default 512 MB (the paper's setting) split across the queues.
	RingBytes int
	// Snaplen truncates stored frames (0 = full frames).
	Snaplen int
	// Passes replays the file this many times, offsetting timestamps on
	// each pass so time stays monotonic. Values below 1 mean one pass.
	Passes int
}

// replayBatchSize is how many frames a pump moves per delivery batch —
// the replay analogue of one poll-batch.
const replayBatchSize = 64

// replayQueue is one receive queue: a byte-bounded staging ring between
// the reader and the queue's pump.
//
//scap:shared
type replayQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	// ring is guarded by mu.
	ring *pcapring.Ring
	// eof is guarded by mu; set once the reader will push no more frames.
	eof bool
}

// PcapReplay is the file-backed capture backend: a reader goroutine
// decodes the trace, the software steering shim picks a queue (and
// evaluates software filters), frames stage in a per-queue pcapring —
// the same bounded-ring loss model the paper measures for user-level
// baselines — and per-queue pump goroutines batch them onto the
// delivery channels. Done closes when the final pass has drained, so
// callers can replay a trace to completion and then harvest results.
//
//scap:shared
type PcapReplay struct {
	cfg    PcapReplayConfig
	steer  *swSteer
	queues []*replayQueue
	ch     []chan []Frame
	done   chan struct{}
	// closeCh is closed by Close to stop the reader and unblock pumps
	// parked on a delivery send.
	closeCh chan struct{}
	wg      sync.WaitGroup

	mu sync.Mutex
	// opened and closed are guarded by mu.
	opened bool
	closed bool
	// readErr is guarded by mu: the first trace decode error, if any.
	readErr error
}

// NewPcapReplay builds the replay backend for cfg; Open starts the
// goroutines and begins delivery.
func NewPcapReplay(cfg PcapReplayConfig) *PcapReplay {
	if cfg.Queues <= 0 {
		cfg.Queues = 1
	}
	if cfg.RingBytes <= 0 {
		cfg.RingBytes = (512 << 20) / cfg.Queues
	}
	p := &PcapReplay{
		cfg:     cfg,
		steer:   newSwSteer(cfg.Queues),
		queues:  make([]*replayQueue, cfg.Queues),
		ch:      make([]chan []Frame, cfg.Queues),
		done:    make(chan struct{}),
		closeCh: make(chan struct{}),
	}
	for i := range p.queues {
		q := &replayQueue{ring: pcapring.New(cfg.RingBytes, cfg.Snaplen)}
		q.cond = sync.NewCond(&q.mu)
		p.queues[i] = q
		p.ch[i] = make(chan []Frame, backendBatchCap)
	}
	return p
}

// Open opens the trace file and starts the reader and pump goroutines.
func (p *PcapReplay) Open() error {
	p.mu.Lock()
	if p.opened || p.closed {
		p.mu.Unlock()
		return errors.New("nic: pcap replay backend already opened or closed")
	}
	p.opened = true
	p.mu.Unlock()
	f, err := os.Open(p.cfg.Path)
	if err != nil {
		// Roll the open back so Close does not wait for goroutines that
		// never started.
		p.mu.Lock()
		p.opened = false
		p.mu.Unlock()
		return fmt.Errorf("nic: pcap replay: %w", err)
	}
	p.wg.Add(1 + len(p.queues))
	go p.read(f)
	for q := range p.queues {
		go p.pump(q)
	}
	go func() {
		p.wg.Wait()
		close(p.done)
	}()
	return nil
}

// Queues returns the number of receive queues.
func (p *PcapReplay) Queues() int { return len(p.ch) }

// Batches returns queue q's delivery channel; closed when the queue has
// drained the final pass or the backend closed.
func (p *PcapReplay) Batches(q int) <-chan []Frame { return p.ch[q] }

// Done is closed when every queue has stopped delivering.
func (p *PcapReplay) Done() <-chan struct{} { return p.done }

// Capabilities reports the software shim's facilities: software RSS and
// filter tables, no hardware offloads.
func (p *PcapReplay) Capabilities() Capabilities { return p.steer.capabilities() }

// AddFilter installs a software filter; see NIC.AddFilter for the
// eviction contract.
func (p *PcapReplay) AddFilter(spec FilterSpec) (evicted pkt.FlowKey, didEvict bool, err error) {
	return p.steer.addFilter(spec)
}

// RemoveFilters removes all filters for key and reports how many.
func (p *PcapReplay) RemoveFilters(key pkt.FlowKey, signature bool) int {
	return p.steer.removeFilters(key, signature)
}

// FilterCount returns the installed (perfect, signature) filter counts.
func (p *PcapReplay) FilterCount() (perfect, signature int) { return p.steer.filterCount() }

// Stats returns a snapshot of the backend counters.
func (p *PcapReplay) Stats() Stats { return p.steer.snapshot() }

// PublishMetrics registers the backend counters under the shared nic_*
// names, with filter drops attributed to cause "swfilter".
func (p *PcapReplay) PublishMetrics(reg *metrics.Registry) {
	publishSwMetrics(reg, p.steer, func(dst []uint64) []uint64 {
		for _, q := range p.queues {
			q.mu.Lock()
			dst = append(dst, q.ring.Stats().Dropped)
			q.mu.Unlock()
		}
		return dst
	})
}

// Err returns the first trace decode error the reader hit, if any. Not
// part of the Backend interface: callers that know they are replaying a
// file check it after Done.
func (p *PcapReplay) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readErr
}

// Close stops the reader, unblocks the pumps, and waits for every
// goroutine to exit and every delivery channel to close. Idempotent.
func (p *PcapReplay) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return nil
	}
	p.closed = true
	opened := p.opened
	p.mu.Unlock()
	close(p.closeCh)
	for _, q := range p.queues {
		q.mu.Lock()
		q.eof = true
		q.cond.Broadcast()
		q.mu.Unlock()
	}
	if !opened {
		close(p.done)
		for _, ch := range p.ch {
			close(ch)
		}
		return nil
	}
	<-p.done
	return nil
}

func (p *PcapReplay) isClosed() bool {
	select {
	case <-p.closeCh:
		return true
	default:
		return false
	}
}

func (p *PcapReplay) setErr(err error) {
	p.mu.Lock()
	if p.readErr == nil {
		p.readErr = err
	}
	p.mu.Unlock()
}

// read is the trace source: it decodes records, steers each through the
// software shim, and stages survivors in the destination queue's ring.
// On the last pass's EOF it marks every queue eof so the pumps drain and
// close their channels. Owns the file handles exclusively.
//
//scap:goroutine replaysource one per PcapReplay backend
func (p *PcapReplay) read(f *os.File) {
	defer p.wg.Done()
	defer func() {
		for _, q := range p.queues {
			q.mu.Lock()
			q.eof = true
			q.cond.Broadcast()
			q.mu.Unlock()
		}
	}()
	passes := p.cfg.Passes
	if passes < 1 {
		passes = 1
	}
	var offset, lastTS int64
	first := true
	for pass := 0; pass < passes; pass++ {
		if p.isClosed() {
			f.Close()
			return
		}
		if !first {
			nf, err := os.Open(p.cfg.Path)
			if err != nil {
				f.Close()
				p.setErr(fmt.Errorf("nic: pcap replay pass %d: %w", pass+1, err))
				return
			}
			f.Close()
			f = nf
			// Keep replayed time monotonic: shift this pass past the
			// previous pass's final timestamp.
			offset = lastTS + 1
		}
		first = false
		r := trace.NewPcapReader(f)
		for {
			if p.isClosed() {
				f.Close()
				return
			}
			data, ts, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				p.setErr(err)
				return
			}
			ts += offset
			if ts > lastTS {
				lastTS = ts
			}
			qi, ok := p.steer.route(data)
			if !ok {
				continue
			}
			q := p.queues[qi]
			q.mu.Lock()
			pushed := q.ring.Push(data, ts)
			if pushed {
				q.cond.Signal()
			}
			q.mu.Unlock()
			if !pushed {
				p.steer.dropRing()
			}
		}
	}
	f.Close()
}

// pump drains one queue's staging ring into its delivery channel in
// poll-batches, stamping each batch's ingest time. Exits (closing the
// channel) when the ring is empty and the reader is done, or when the
// backend closes.
//
//scap:goroutine replaypump one per receive queue
func (p *PcapReplay) pump(qi int) {
	defer p.wg.Done()
	defer close(p.ch[qi])
	q := p.queues[qi]
	for {
		q.mu.Lock()
		for q.ring.Len() == 0 && !q.eof {
			q.cond.Wait()
		}
		if q.ring.Len() == 0 {
			q.mu.Unlock()
			return
		}
		ingest := metrics.Nanotime()
		batch := make([]Frame, 0, replayBatchSize)
		for len(batch) < replayBatchSize {
			rf, ok := q.ring.Pop()
			if !ok {
				break
			}
			batch = append(batch, Frame{Data: rf.Data, TS: rf.TS, Ingest: ingest})
		}
		q.mu.Unlock()
		select {
		case p.ch[qi] <- batch:
		case <-p.closeCh:
			return
		}
	}
}
