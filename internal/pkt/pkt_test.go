package pkt

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func tcpKey(sp, dp uint16) FlowKey {
	return FlowKey{
		SrcIP:   MustAddr("10.0.0.1"),
		DstIP:   MustAddr("192.168.1.2"),
		SrcPort: sp, DstPort: dp,
		Proto: ProtoTCP,
	}
}

func TestDecodeTCPRoundTrip(t *testing.T) {
	spec := TCPSpec{
		Key:     tcpKey(44321, 80),
		Seq:     0xdeadbeef,
		Ack:     0x01020304,
		Flags:   FlagPSH | FlagACK,
		Window:  8192,
		TTL:     61,
		IPID:    77,
		Payload: []byte("GET / HTTP/1.1\r\n"),
	}
	frame := BuildTCP(spec)
	var p Packet
	if err := Decode(frame, &p); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if p.Key != spec.Key {
		t.Errorf("key = %v, want %v", p.Key, spec.Key)
	}
	if p.Seq != spec.Seq || p.Ack != spec.Ack {
		t.Errorf("seq/ack = %d/%d, want %d/%d", p.Seq, p.Ack, spec.Seq, spec.Ack)
	}
	if p.TCPFlags != spec.Flags {
		t.Errorf("flags = %#x, want %#x", p.TCPFlags, spec.Flags)
	}
	if p.Window != spec.Window || p.TTL != spec.TTL || p.IPID != spec.IPID {
		t.Errorf("window/ttl/ipid = %d/%d/%d", p.Window, p.TTL, p.IPID)
	}
	if !bytes.Equal(p.Payload, spec.Payload) {
		t.Errorf("payload = %q, want %q", p.Payload, spec.Payload)
	}
	if p.IsFragment() {
		t.Error("unfragmented packet reported as fragment")
	}
	if p.IPVersion != 4 {
		t.Errorf("ip version = %d, want 4", p.IPVersion)
	}
}

func TestDecodeUDPRoundTrip(t *testing.T) {
	key := FlowKey{
		SrcIP:   MustAddr("10.1.2.3"),
		DstIP:   MustAddr("10.4.5.6"),
		SrcPort: 5353, DstPort: 53,
		Proto: ProtoUDP,
	}
	frame := BuildUDP(UDPSpec{Key: key, Payload: []byte("query")})
	var p Packet
	if err := Decode(frame, &p); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if p.Key != key {
		t.Errorf("key = %v, want %v", p.Key, key)
	}
	if string(p.Payload) != "query" {
		t.Errorf("payload = %q", p.Payload)
	}
}

func TestDecodeIPv6TCP(t *testing.T) {
	key := FlowKey{
		SrcIP:   MustAddr("2001:db8::1"),
		DstIP:   MustAddr("2001:db8::2"),
		SrcPort: 1234, DstPort: 443,
		Proto: ProtoTCP,
	}
	frame := BuildTCP(TCPSpec{Key: key, Seq: 9, Flags: FlagSYN})
	var p Packet
	if err := Decode(frame, &p); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if p.Key != key {
		t.Errorf("key = %v, want %v", p.Key, key)
	}
	if p.IPVersion != 6 {
		t.Errorf("ip version = %d, want 6", p.IPVersion)
	}
	if p.Seq != 9 || p.TCPFlags != FlagSYN {
		t.Errorf("seq=%d flags=%#x", p.Seq, p.TCPFlags)
	}
}

func TestDecodeTruncated(t *testing.T) {
	frame := BuildTCP(TCPSpec{Key: tcpKey(1, 2), Payload: []byte("hello")})
	for _, cut := range []int{0, 5, EthernetHeaderLen - 1, EthernetHeaderLen + 3, EthernetHeaderLen + IPv4MinHeaderLen + 4} {
		var p Packet
		err := Decode(frame[:cut], &p)
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut=%d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestDecodeUnsupportedEtherType(t *testing.T) {
	frame := make([]byte, 64)
	frame[12], frame[13] = 0x08, 0x06 // ARP
	var p Packet
	if err := Decode(frame, &p); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestTCPChecksumValid(t *testing.T) {
	frame := BuildTCP(TCPSpec{Key: tcpKey(99, 80), Payload: []byte("abcde")})
	var p Packet
	if err := Decode(frame, &p); err != nil {
		t.Fatal(err)
	}
	l4 := frame[p.L4Offset:]
	sum := Checksum(l4, PseudoHeaderSum(p.Key.SrcIP, p.Key.DstIP, ProtoTCP, len(l4)))
	if sum != 0 {
		t.Errorf("verifying checksum over valid segment = %#x, want 0", sum)
	}
}

func TestIPv4HeaderChecksumValid(t *testing.T) {
	frame := BuildTCP(TCPSpec{Key: tcpKey(99, 80)})
	hdr := frame[EthernetHeaderLen : EthernetHeaderLen+IPv4MinHeaderLen]
	if sum := Checksum(hdr, 0); sum != 0 {
		t.Errorf("ip header checksum verify = %#x, want 0", sum)
	}
}

func TestChecksumRFC1071Example(t *testing.T) {
	// Example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != ^uint16(0xddf2) {
		t.Errorf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestFragmentIPv4RoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte("0123456789abcdef"), 100)
	frame := BuildTCP(TCPSpec{Key: tcpKey(7, 8), Seq: 5, Flags: FlagACK, Payload: payload})
	frags := FragmentIPv4(frame, 576)
	if len(frags) < 3 {
		t.Fatalf("got %d fragments, want >= 3", len(frags))
	}
	var reassembled []byte
	for i, f := range frags {
		var p Packet
		if err := Decode(f, &p); err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if !p.IsFragment() {
			t.Fatalf("fragment %d not flagged as fragment", i)
		}
		if p.FragOffset != len(reassembled) {
			t.Fatalf("fragment %d offset = %d, want %d", i, p.FragOffset, len(reassembled))
		}
		if wantMore := i < len(frags)-1; p.MoreFrags != wantMore {
			t.Fatalf("fragment %d MF = %v, want %v", i, p.MoreFrags, wantMore)
		}
		reassembled = append(reassembled, p.Payload...)
	}
	var orig Packet
	if err := Decode(frame, &orig); err != nil {
		t.Fatal(err)
	}
	// Reassembled bytes include the TCP header of the original datagram.
	if !bytes.Equal(reassembled[TCPMinHeaderLen:], orig.Payload) {
		t.Error("reassembled fragments do not reproduce the original payload")
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := tcpKey(1000, 80)
	r := k.Reverse()
	if r.SrcPort != 80 || r.DstPort != 1000 || r.SrcIP != k.DstIP || r.DstIP != k.SrcIP {
		t.Errorf("reverse = %v", r)
	}
	if r.Reverse() != k {
		t.Error("double reverse is not identity")
	}
}

func TestFlowKeyCanonicalSymmetric(t *testing.T) {
	k := tcpKey(1000, 80)
	c1, sw1 := k.Canonical()
	c2, sw2 := k.Reverse().Canonical()
	if c1 != c2 {
		t.Errorf("canonical forms differ: %v vs %v", c1, c2)
	}
	if sw1 == sw2 {
		t.Error("exactly one direction should report swapped")
	}
}

func randAddr(r *rand.Rand) netip.Addr {
	if r.Intn(4) == 0 {
		var b [16]byte
		r.Read(b[:])
		return netip.AddrFrom16(b)
	}
	var b [4]byte
	r.Read(b[:])
	return netip.AddrFrom4(b)
}

func randKey(r *rand.Rand) FlowKey {
	k := FlowKey{
		SrcIP:   randAddr(r),
		SrcPort: uint16(r.Intn(65536)),
		DstPort: uint16(r.Intn(65536)),
		Proto:   ProtoTCP,
	}
	if k.SrcIP.Is4() {
		var b [4]byte
		r.Read(b[:])
		k.DstIP = netip.AddrFrom4(b)
	} else {
		var b [16]byte
		r.Read(b[:])
		k.DstIP = netip.AddrFrom16(b)
	}
	return k
}

func TestSymHashProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(randKey(r))
			v[1] = reflect.ValueOf(r.Uint64())
		},
	}
	f := func(k FlowKey, seed uint64) bool {
		return k.SymHash(seed) == k.Reverse().SymHash(seed)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHashSeedChangesLayout(t *testing.T) {
	k := tcpKey(12345, 80)
	if k.Hash(1) == k.Hash(2) {
		t.Error("different seeds produced identical hashes")
	}
}

func TestCanonicalProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		k := randKey(r)
		c1, _ := k.Canonical()
		c2, _ := k.Reverse().Canonical()
		if c1 != c2 {
			t.Fatalf("canonical mismatch for %v", k)
		}
		c3, _ := c1.Canonical()
		if c3 != c1 {
			t.Fatalf("canonical not idempotent for %v", k)
		}
	}
}

func TestSeqLen(t *testing.T) {
	cases := []struct {
		flags uint8
		n     int
		want  uint32
	}{
		{FlagACK, 0, 0},
		{FlagSYN, 0, 1},
		{FlagFIN | FlagACK, 3, 4},
		{FlagSYN | FlagFIN, 10, 12},
	}
	for _, c := range cases {
		p := Packet{TCPFlags: c.flags, Payload: make([]byte, c.n)}
		if got := p.SeqLen(); got != c.want {
			t.Errorf("SeqLen(flags=%#x,n=%d) = %d, want %d", c.flags, c.n, got, c.want)
		}
	}
}

func TestFlagString(t *testing.T) {
	if s := FlagString(FlagSYN | FlagACK); s != "SA" {
		t.Errorf("FlagString = %q, want SA", s)
	}
	if s := FlagString(0); s != "." {
		t.Errorf("FlagString(0) = %q, want .", s)
	}
}

func TestDecodeDoesNotAllocate(t *testing.T) {
	frame := BuildTCP(TCPSpec{Key: tcpKey(5, 6), Payload: bytes.Repeat([]byte("x"), 512)})
	var p Packet
	allocs := testing.AllocsPerRun(200, func() {
		if err := Decode(frame, &p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Decode allocates %.1f times per call, want 0", allocs)
	}
}

func BenchmarkDecodeTCP(b *testing.B) {
	frame := BuildTCP(TCPSpec{Key: tcpKey(5, 6), Payload: bytes.Repeat([]byte("x"), 1400)})
	var p Packet
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Decode(frame, &p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymHash(b *testing.B) {
	k := tcpKey(4444, 80)
	for i := 0; i < b.N; i++ {
		_ = k.SymHash(uint64(i))
	}
}
