package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ExportedDoc requires a doc comment on every exported top-level symbol of
// packages carrying a //scap:publicapi file marker. The public surface of
// the library mirrors the paper's Table 1 API; an undocumented exported
// symbol there is an API-contract hole, not a style nit. Grouped const/var
// declarations are satisfied by a doc comment on the group; methods on
// unexported types are skipped (they are not part of the godoc surface).
var ExportedDoc = &Analyzer{
	Name: "exporteddoc",
	Doc:  "exported symbols of //scap:publicapi packages must have doc comments",
	Run:  runExportedDoc,
}

func runExportedDoc(p *Package) []Diagnostic {
	if !publicAPIPackage(p) {
		return nil
	}
	var diags []Diagnostic
	flag := func(pos token.Pos, kind, name string) {
		diags = append(diags, Diagnostic{
			Pos:      p.Fset.Position(pos),
			Analyzer: "exporteddoc",
			Message: fmt.Sprintf(
				"exported %s %s has no doc comment (//scap:publicapi package: document every exported symbol)",
				kind, name),
		})
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				kind, name := "function", d.Name.Name
				if d.Recv != nil && len(d.Recv.List) > 0 {
					tn := receiverTypeName(d)
					if tn == "" || !ast.IsExported(tn) {
						continue
					}
					kind, name = "method", tn+"."+d.Name.Name
				}
				if !hasDocText(d.Doc) {
					flag(d.Name.Pos(), kind, name)
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !hasDocText(s.Doc) && !hasDocText(d.Doc) {
							flag(s.Name.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						if hasDocText(s.Doc) || hasDocText(d.Doc) {
							continue
						}
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, name := range s.Names {
							if name.IsExported() {
								flag(name.Pos(), kind, name.Name)
								break // one diagnostic per spec line
							}
						}
					}
				}
			}
		}
	}
	return diags
}

// hasDocText reports whether cg carries actual prose: CommentGroup.Text
// strips directive comments (//scap:..., //go:...), so a group holding
// only markers does not count as documentation.
func hasDocText(cg *ast.CommentGroup) bool {
	return cg != nil && strings.TrimSpace(cg.Text()) != ""
}

// publicAPIPackage reports whether any file of p carries the
// //scap:publicapi marker.
func publicAPIPackage(p *Package) bool {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			if hasMarker(cg, publicapiMarker) {
				return true
			}
		}
	}
	return false
}
