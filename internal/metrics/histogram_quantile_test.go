package metrics

import "testing"

// quantileHist builds a maxPow-bucket histogram and observes every value of
// vals on core 0.
func quantileHist(maxPow int, vals []uint64) HistogramSnap {
	h := newHistogram(Desc{Name: "q", Unit: "ns"}, 1, maxPow)
	for _, v := range vals {
		h.Observe(0, v)
	}
	return h.snapshot()
}

// within2x asserts the power-of-two bucket error bound: the estimate must lie
// within a factor of two of the true quantile (the bucket width guarantee the
// QuantileFromSnap doc promises).
func within2x(t *testing.T, name string, got, want float64) {
	t.Helper()
	if want == 0 {
		if got > 1 {
			t.Fatalf("%s: got %.1f, want ~0 (first bucket)", name, got)
		}
		return
	}
	if got < want/2 || got > want*2 {
		t.Fatalf("%s: estimate %.1f outside the 2x bucket bound around true quantile %.1f", name, got, want)
	}
}

func TestQuantileEmpty(t *testing.T) {
	if q := QuantileFromSnap(HistogramSnap{}, 0.5); q != 0 {
		t.Fatalf("empty snapshot quantile = %v, want 0", q)
	}
}

func TestQuantileConstant(t *testing.T) {
	// All mass at one value: every quantile must land in its bucket.
	vals := make([]uint64, 1000)
	for i := range vals {
		vals[i] = 1000
	}
	s := quantileHist(20, vals)
	for _, p := range []float64{0.01, 0.5, 0.9, 0.99, 1} {
		within2x(t, "constant", QuantileFromSnap(s, p), 1000)
	}
}

func TestQuantileUniform(t *testing.T) {
	// Uniform 1..65536. True p-quantile is ~p*65536; the log-linear
	// interpolation must stay within the 2x bucket bound at p50 and p99.
	var vals []uint64
	for v := uint64(1); v <= 65536; v++ {
		vals = append(vals, v)
	}
	s := quantileHist(20, vals)
	within2x(t, "uniform p50", QuantileFromSnap(s, 0.50), 32768)
	within2x(t, "uniform p99", QuantileFromSnap(s, 0.99), 64880)
	within2x(t, "uniform p01", QuantileFromSnap(s, 0.01), 655)
}

func TestQuantileExponential(t *testing.T) {
	// Geometric mass: half the observations at 16, a quarter at 256, an
	// eighth at 4096, the rest at 65536 — a heavy-tail shape like latency.
	var vals []uint64
	add := func(v uint64, n int) {
		for i := 0; i < n; i++ {
			vals = append(vals, v)
		}
	}
	add(16, 800)
	add(256, 400)
	add(4096, 200)
	add(65536, 200)
	s := quantileHist(20, vals)
	// Order statistics: ranks 1..800 are 16, ..1200 are 256, ..1400 are
	// 4096, ..1600 are 65536 — so p50=16, p85=4096, p99=65536.
	within2x(t, "exp p50", QuantileFromSnap(s, 0.50), 16)
	within2x(t, "exp p85", QuantileFromSnap(s, 0.85), 4096)
	within2x(t, "exp p99", QuantileFromSnap(s, 0.99), 65536)
}

func TestQuantileExactPowersOfTwo(t *testing.T) {
	// A value exactly on a bucket boundary fills bucket (2^(k-1), 2^k]; the
	// p=1 estimate is the bucket's upper bound — exact for boundary values.
	for _, v := range []uint64{2, 8, 1024, 1 << 19} {
		s := quantileHist(20, []uint64{v})
		if q := QuantileFromSnap(s, 1); q != float64(v) {
			t.Fatalf("p100 of single boundary value %d = %v, want exact", v, q)
		}
	}
}

func TestQuantileMonotonic(t *testing.T) {
	var vals []uint64
	for v := uint64(1); v <= 10000; v += 7 {
		vals = append(vals, v)
	}
	s := quantileHist(20, vals)
	prev := -1.0
	for p := 0.0; p <= 1.0; p += 0.05 {
		q := QuantileFromSnap(s, p)
		if q < prev {
			t.Fatalf("quantile not monotone: q(%.2f)=%v < %v", p, q, prev)
		}
		prev = q
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	// Observations beyond 2^maxPow land in the overflow bucket; the estimate
	// degrades to the largest finite bound — a documented lower bound.
	s := quantileHist(4, []uint64{1 << 30, 1 << 30, 1 << 30})
	if q := QuantileFromSnap(s, 0.5); q != 16 {
		t.Fatalf("overflow quantile = %v, want last finite bound 16", q)
	}
}

func TestQuantileClampsP(t *testing.T) {
	s := quantileHist(10, []uint64{4, 4, 4, 4})
	lo := QuantileFromSnap(s, -1)
	hi := QuantileFromSnap(s, 2)
	if lo <= 0 || hi <= 0 || lo > hi {
		t.Fatalf("clamped quantiles lo=%v hi=%v", lo, hi)
	}
	if hi != QuantileFromSnap(s, 1) {
		t.Fatalf("p>1 should clamp to p=1")
	}
}
