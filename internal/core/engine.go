package core

import (
	"container/heap"
	"math/rand"

	"scap/internal/event"
	"scap/internal/flowtab"
	"scap/internal/mem"
	"scap/internal/metrics"
	"scap/internal/nic"
	"scap/internal/pkt"
	"scap/internal/reassembly"
	"scap/internal/sketch"
	"scap/internal/streamscope"
)

// Stats are the per-engine counters (roughly scap_stats_t plus internals).
type Stats struct {
	Frames       uint64
	DecodeErrors uint64
	FragsHeld    uint64 // fragments absorbed by the defragmenter
	FragsDropped uint64 // fragments dropped (fast mode does not defragment)
	Packets      uint64
	PayloadBytes uint64
	// StoredBytes counts payload actually written into stream memory (the
	// in-kernel copy the cost model prices per byte).
	StoredBytes uint64

	FilterIgnoredPkts uint64
	CutoffPkts        uint64
	CutoffBytes       uint64
	PPLDroppedPkts    uint64
	PPLDroppedBytes   uint64
	EventsLost        uint64
	EventsLostBytes   uint64

	StreamsCreated uint64
	StreamsClosed  uint64
	StreamsExpired uint64
	StreamsEvicted uint64

	// Reassembly aggregates, accumulated when streams retire.
	AsmDuplicateBytes uint64
	AsmDeliveredBytes uint64
	AsmHolesSkipped   uint64
	AsmOutOfOrder     uint64
	AsmDroppedSegs    uint64

	FDIRInstalled uint64
	FDIRRemoved   uint64

	// Sketch front-end counters. Observed totals are published from the
	// timer path, so they trail the live sketch by up to one timer tick;
	// suppression is counted per packet.
	SketchObservedPkts    uint64
	SketchObservedBytes   uint64
	SketchSuppressedPkts  uint64
	SketchSuppressedBytes uint64
}

// Options wires an Engine to its shared resources.
type Options struct {
	Config Config
	// Mem is the socket-wide memory manager (shared across cores).
	Mem *mem.Manager
	// NIC, when non-nil and Config.UseFDIR is set, receives drop-filter
	// installs for cutoff streams. Any capture backend's filter surface
	// works here: installs are gated on its Capabilities, and a backend
	// without hardware tables emulates the drops in software
	// (drops{cause="swfilter"} instead of cause="fdir").
	NIC nic.FilterSink
	// Queue receives this core's events.
	Queue  *event.Queue
	CoreID int
	// Rand seeds the flow table hash; nil uses a global source.
	Rand *rand.Rand
	// MaxStreams, when > 0, bounds tracked stream records; the oldest
	// stream is evicted to admit a new one (Scap's newest-wins policy).
	MaxStreams int
	// Metrics is the socket-wide instrument bundle (shared across cores;
	// its registry must cover CoreID). Nil gives the engine a private
	// registry, so standalone engines keep working unchanged.
	Metrics *Metrics
	// Scope is the socket-wide stream-journal pool (shared across cores;
	// each engine writes only its own core's journals). Nil disables
	// per-stream journaling.
	Scope *streamscope.Scope
}

// filterEntry tracks one stream's FDIR deadline in the engine's heap
// (paper §5.5: filters are kept sorted by timeout).
type filterEntry struct {
	deadline int64
	key      pkt.FlowKey
	id       uint64
}

type filterHeap []filterEntry

func (h filterHeap) Len() int           { return len(h) }
func (h filterHeap) Less(i, j int) bool { return h[i].deadline < h[j].deadline }
func (h filterHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *filterHeap) Push(x any)        { *h = append(*h, x.(filterEntry)) }
func (h *filterHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is one core's kernel path. The owning goroutine is the only one
// that may call HandleFrame, HandlePacket, CheckTimers, and Shutdown;
// Stats and Control are safe from any goroutine.
//
// The ownership analyzer enforces the single-writer rule statically:
// every method is restricted to the engine role except the //scap:anyrole
// accessors, which are individually audited for cross-goroutine safety.
//
//scap:shared
//scap:owner engine
type Engine struct {
	cfg    Config
	mm     *mem.Manager
	nicDev nic.FilterSink
	// caps is the backend's negotiated capability set, captured once at
	// construction (zero when nicDev is nil): filter installs are gated on
	// it so a backend without any filter table is never driven.
	caps   nic.Capabilities
	q      *event.Queue
	table  *flowtab.Table
	defrag *reassembly.Defragmenter
	ctrl   ctrlQueue
	coreID int

	// dirty holds streams with a non-empty chunk, for flush timeouts.
	dirty map[*flowtab.Stream]struct{}
	// filters orders installed FDIR filters by deadline.
	filters filterHeap

	// sketch is the optional priority-aware front-end: it accounts every
	// packet and answers cutoff decisions for flows that no longer need a
	// stream record. Nil when Config.Sketch.Enabled is false.
	sketch *sketch.Sketch
	// retire is a cutoff stream scheduled for record retirement at the end
	// of the current packet (deferred so the retirement doesn't pull state
	// out from under the payload path that triggered it).
	retire *flowtab.Stream

	// dynCutoff is the engine-wide dynamic cutoff clamp set by the adaptive
	// control plane (OpSetDynCutoff); -1 means no clamp. It caps every
	// stream's effective cutoff without rewriting per-stream state, so
	// relaxing it instantly restores configured behavior. Engine-owned plain
	// field: writes arrive only through the ctrl queue drain.
	dynCutoff int64
	// sketchFDIRBudget bounds how many sketch-nominated flows may hold NIC
	// drop filters at once (-1 = unlimited); sketchFDIRLive counts them.
	sketchFDIRBudget int
	sketchFDIRLive   int
	// victims is the expiry sweep's reusable collection buffer.
	victims []*flowtab.Stream

	// prev* remember the flow table's plain counters at the last timer
	// publication, so the timer path adds deltas to the metric cells.
	prevLookups uint64
	prevProbes  uint64
	prevSwept   uint64
	prevGrows   uint64
	prevSkPkts  uint64
	prevSkBytes uint64

	maxStreams int
	// m is the socket-wide instrument bundle; c is this core's bound cells
	// (the live statistics block — the owning kernel-path goroutine is the
	// only writer, any goroutine may read through the registry or Stats).
	m *Metrics
	c cells
	// scope is the per-stream journal pool; nil when journaling is off.
	// This engine only ever acquires/writes journals on its own core's
	// pool, preserving the single-writer-per-journal invariant.
	scope   *streamscope.Scope
	scratch pkt.Packet
	ctrlBuf []Ctrl
	now     int64

	// stageStart is the capture-clock stamp of the current HandleFrames
	// batch entry; the first flushEvents of the batch observes
	// engine→ring latency against it and zeroes it, so timer-driven
	// flushes never measure against a stale batch.
	stageStart int64

	// evBuf stages events between flushes so a burst of chunks reaches the
	// ring through one PushBatch — one tail publication and at most one
	// consumer wakeup — instead of a push per event.
	evBuf []event.Event

	// curStream/curExt name the stream whose payload is currently being
	// fed through the assembler; emitCb and flushCb are bound once at
	// construction so the per-packet path hands the assembler a callback
	// without allocating a closure per payload.
	curStream *flowtab.Stream
	curExt    *streamExt
	emitCb    reassembly.Emit
	flushCb   reassembly.Emit
}

// NewEngine creates an engine.
func NewEngine(opts Options) *Engine {
	cfg := opts.Config.withDefaults()
	e := &Engine{
		cfg:              cfg,
		mm:               opts.Mem,
		nicDev:           opts.NIC,
		q:                opts.Queue,
		table:            flowtab.NewTable(opts.Rand),
		coreID:           opts.CoreID,
		dirty:            make(map[*flowtab.Stream]struct{}),
		maxStreams:       opts.MaxStreams,
		evBuf:            make([]event.Event, 0, evBatchMax),
		dynCutoff:        -1,
		sketchFDIRBudget: -1,
	}
	if opts.NIC != nil {
		e.caps = opts.NIC.Capabilities()
	}
	if cfg.Sketch.Enabled {
		e.sketch = sketch.New(sketch.Config{
			Width:      cfg.Sketch.Width,
			Depth:      cfg.Sketch.Depth,
			TopK:       cfg.Sketch.TopK,
			Priorities: cfg.Priorities,
		})
		if min := cfg.minCutoff(); min >= 0 {
			e.sketch.SetHeavyMin(uint64(min))
		}
	}
	e.emitCb = e.emitToCur
	e.flushCb = e.flushToCur
	e.scope = opts.Scope
	e.m = opts.Metrics
	if e.m == nil {
		e.m = NewMetrics(metrics.NewRegistry(opts.CoreID + 1))
	}
	e.c = e.m.bind(opts.CoreID)
	if e.mm == nil {
		e.mm = mem.New(mem.Config{
			Priorities: cfg.Priorities,
			BlockSize:  cfg.ArenaBlockSize(),
			Cores:      opts.CoreID + 1,
		})
	}
	if e.q == nil {
		e.q = event.NewQueue(0)
	}
	// Disjoint ID spaces per core: stream IDs are unique socket-wide.
	e.table.SetIDBase(uint64(opts.CoreID) << 48)
	if cfg.Mode == reassembly.ModeStrict {
		e.defrag = reassembly.NewDefragmenter(0, 0)
	}
	return e
}

// Stats returns a snapshot of this core's counters. It is safe to call from
// any goroutine while the engine runs: each counter is loaded atomically, so
// the snapshot is race-free (individual fields may lag each other by a
// packet, like reading /proc counters). The same numbers — plus totals,
// per-core breakdowns, and rates — are available through the shared
// metrics registry (Metrics.Registry).
//
//scap:anyrole every counter is read through sync/atomic
func (e *Engine) Stats() Stats {
	return Stats{
		Frames:       e.c.frames.Load(),
		DecodeErrors: e.c.decodeErrors.Load(),
		FragsHeld:    e.c.fragsHeld.Load(),
		FragsDropped: e.c.fragsDropped.Load(),
		Packets:      e.c.packets.Load(),
		PayloadBytes: e.c.payloadBytes.Load(),
		StoredBytes:  e.c.storedBytes.Load(),

		FilterIgnoredPkts: e.c.filterIgnoredPkts.Load(),
		CutoffPkts:        e.c.cutoffPkts.Load(),
		CutoffBytes:       e.c.cutoffBytes.Load(),
		PPLDroppedPkts:    e.c.pplDroppedPkts.Load(),
		PPLDroppedBytes:   e.c.pplDroppedBytes.Load(),
		EventsLost:        e.c.eventsLost.Load(),
		EventsLostBytes:   e.c.eventsLostBytes.Load(),

		StreamsCreated: e.c.streamsCreated.Load(),
		StreamsClosed:  e.c.streamsClosed.Load(),
		StreamsExpired: e.c.streamsExpired.Load(),
		StreamsEvicted: e.c.streamsEvicted.Load(),

		AsmDuplicateBytes: e.c.asmDuplicateBytes.Load(),
		AsmDeliveredBytes: e.c.asmDeliveredBytes.Load(),
		AsmHolesSkipped:   e.c.asmHolesSkipped.Load(),
		AsmOutOfOrder:     e.c.asmOutOfOrder.Load(),
		AsmDroppedSegs:    e.c.asmDroppedSegs.Load(),

		FDIRInstalled: e.c.fdirInstalled.Load(),
		FDIRRemoved:   e.c.fdirRemoved.Load(),

		SketchObservedPkts:    e.c.sketchObservedPkts.Load(),
		SketchObservedBytes:   e.c.sketchObservedBytes.Load(),
		SketchSuppressedPkts:  e.c.sketchSuppressedPkts.Load(),
		SketchSuppressedBytes: e.c.sketchSuppressedBytes.Load(),
	}
}

// Metrics returns the engine's instrument bundle (the shared one from
// Options, or the engine's private bundle when none was given).
//
//scap:anyrole immutable after construction
func (e *Engine) Metrics() *Metrics { return e.m }

// Table exposes the flow table (tests and the simulator use it).
//
//scap:anyrole immutable after construction
func (e *Engine) Table() *flowtab.Table { return e.table }

// Sketch returns the sketch front-end, or nil when disabled. Cross-
// goroutine readers use its Snapshot method.
//
//scap:anyrole immutable after construction; snapshots are atomic
func (e *Engine) Sketch() *sketch.Sketch { return e.sketch }

// Queue returns the engine's event queue.
//
//scap:anyrole immutable after construction
func (e *Engine) Queue() *event.Queue { return e.q }

// Now returns the engine's current virtual time (last packet or timer).
func (e *Engine) Now() int64 { return e.now }

// CoreID returns the engine's core (queue) index.
//
//scap:anyrole immutable after construction
func (e *Engine) CoreID() int { return e.coreID }

// DrainControls applies pending control messages and flushes any events
// they produced. Drivers call it after their frame loop stops, so KeepChunk
// hand-backs sent during the final worker drain are still reaped (and their
// blocks freed) instead of lingering in the control queue.
func (e *Engine) DrainControls() {
	e.drainCtrl()
	e.flushEvents()
}

// HandleFrame is the softirq entry point: decode and process one frame.
// Staged events are flushed before it returns, so callers may poll the
// queue immediately after.
//
//scap:hotpath
func (e *Engine) HandleFrame(data []byte, ts int64) {
	e.drainCtrl()
	e.handleFrame(data, ts)
	e.flushEvents()
}

// HandleFrames processes a batch of frames with one control drain and one
// event flush for the whole burst — the kernel goroutine's entry point.
//
//scap:hotpath
func (e *Engine) HandleFrames(frames []nic.Frame) {
	e.drainCtrl()
	now := metrics.Nanotime()
	e.stageStart = now
	for i := range frames {
		if ing := frames[i].Ingest; ing > 0 && now >= ing {
			e.m.stageIngest.Observe(e.coreID, uint64(now-ing))
		}
		e.handleFrame(frames[i].Data, frames[i].TS)
	}
	e.flushEvents()
}

//scap:hotpath
func (e *Engine) handleFrame(data []byte, ts int64) {
	e.c.frames.Add(1)
	if ts > e.now {
		e.now = ts
	}
	p := &e.scratch
	if err := pkt.Decode(data, p); err != nil {
		e.c.decodeErrors.Add(1)
		return
	}
	p.Timestamp = ts
	e.handlePacket(p)
}

// HandlePacket processes an already-decoded packet and flushes staged
// events before returning.
//
//scap:hotpath
func (e *Engine) HandlePacket(p *pkt.Packet) {
	e.handlePacket(p)
	e.flushEvents()
}

//scap:hotpath
func (e *Engine) handlePacket(p *pkt.Packet) {
	if p.Timestamp > e.now {
		e.now = p.Timestamp
	}
	if p.IsFragment() {
		if e.defrag == nil {
			// Fast mode does not spend memory on defragmentation; the
			// fragmented datagram is counted against the stream as loss.
			e.c.fragsDropped.Add(1)
			return
		}
		whole := e.defrag.Add(p)
		if whole == nil {
			e.c.fragsHeld.Add(1)
			return
		}
		// Reparse the transport header from the reassembled datagram.
		var np pkt.Packet
		np = *p
		np.FragOffset, np.MoreFrags = 0, false
		if err := pkt.DecodeTransport(whole, &np); err != nil {
			e.c.decodeErrors.Add(1)
			return
		}
		p = &np
	}
	e.c.packets.Add(1)
	e.process(p)
}

// process runs the per-packet stream logic for one decoded packet. The flow
// key is hashed exactly once; the same 64-bit hash drives the table probe,
// the miss-path insert, and the sketch front-end.
//
//scap:hotpath
func (e *Engine) process(p *pkt.Packet) {
	ts := p.Timestamp
	h := e.table.Hash(p.Key)
	s := e.table.LookupH(h, p.Key)
	if e.sketch != nil && e.sketchObserve(p, h, s) {
		return
	}
	if s == nil {
		if e.maxStreams > 0 && e.table.Len() >= e.maxStreams {
			if victim := e.table.Oldest(); victim != nil {
				e.finishStream(victim, flowtab.StatusEvicted)
			}
		}
		s = e.table.CreateH(h, p.Key, ts)
		e.initStream(s, ext(s), p, h)
	} else {
		e.table.Touch(s, ts)
	}
	x := ext(s)

	s.Stats.Pkts++
	s.Stats.Bytes += uint64(p.WireLen)
	s.Stats.End = ts

	if x.ignored {
		e.c.filterIgnoredPkts.Add(1)
		return
	}

	if p.Key.Proto == pkt.ProtoTCP {
		e.processTCP(s, x, p)
	} else {
		// UDP and other protocols: concatenate payloads in arrival order
		// (paper §2.3).
		e.processPayloadBytes(s, x, p, p.Payload, false)
	}
	e.finishRetired()
}

// sketchObserve accounts one packet in the sketch and reports whether the
// sketch fully answered it — true means the engine skips record lookup,
// creation, and all per-stream work for this packet. Tracked flows (s !=
// nil) are only accounted, never suppressed. Untracked flows are suppressed
// when (a) neither direction passes the BPF filter, or (b) the flow's byte
// estimate had already crossed its cutoff before this packet and its
// priority is at or below Sketch.SuppressMaxPriority. TCP SYN/FIN/RST always
// pass through so connection lifecycle (handshake stats, termination) still
// reaches the record path. Estimates are one-sided per flow but can be
// inflated by counter collisions, so suppression is probabilistic in exactly
// the way count-min front-ends are — sized by Sketch.Width/Depth.
//
//scap:hotpath
func (e *Engine) sketchObserve(p *pkt.Packet, h uint64, s *flowtab.Stream) bool {
	n := len(p.Payload)
	var prio int
	if s != nil {
		prio = s.Priority
	} else {
		prio = e.packetPriority(p)
	}
	est := e.sketch.Observe(h, p.Key, prio, n)
	if s != nil {
		return false
	}
	if e.cfg.Filter != nil && !e.cfg.Filter.Match(p) {
		rev := *p
		rev.Key = p.Key.Reverse()
		if !e.cfg.Filter.Match(&rev) {
			// Filter-rejected flow: with the sketch in front there is no
			// reason to burn a record on it just to remember the rejection.
			e.c.filterIgnoredPkts.Add(1)
			return true
		}
	}
	if p.Key.Proto == pkt.ProtoTCP && p.TCPFlags&(pkt.FlagSYN|pkt.FlagFIN|pkt.FlagRST) != 0 {
		return false
	}
	if prio > e.cfg.Sketch.SuppressMaxPriority {
		return false
	}
	// Direction is unknown without a record; resolve the cutoff as the
	// client side (directional cutoffs are approximated for suppressed
	// flows).
	cut := e.effCutoff(e.cfg.resolveCutoff(p, pkt.DirClient))
	if cut < 0 || est-uint64(n) < uint64(cut) {
		return false
	}
	e.c.sketchSuppressedPkts.Add(1)
	e.c.sketchSuppressedBytes.Add(uint64(n))
	return true
}

// effCutoff clamps a stream's configured cutoff with the engine-wide
// dynamic cutoff: the tighter of the two wins, and -1 (unlimited) on both
// sides means no cutoff. Evaluated at use time so tightening catches
// existing streams on their next payload and relaxing needs no table walk.
//
//scap:hotpath
func (e *Engine) effCutoff(cut int64) int64 {
	if e.dynCutoff >= 0 && (cut < 0 || cut > e.dynCutoff) {
		return e.dynCutoff
	}
	return cut
}

// packetPriority resolves the PPL priority a packet's flow would be
// assigned at stream creation (first matching priority class).
//
//scap:hotpath
func (e *Engine) packetPriority(p *pkt.Packet) int {
	for _, pc := range e.cfg.PriorityClasses {
		if pc.Filter.Match(p) {
			return pc.Priority
		}
	}
	return 0
}

// finishRetired retires a stream whose cutoff fired this packet and whose
// further handling the sketch can take over: the record is finished (final
// chunk + termination event) and any installed NIC filters are handed to
// the sketch's heavy entry so they stay in force without the record. From
// here on the flow's packets are answered by sketchObserve.
func (e *Engine) finishRetired() {
	s := e.retire
	if s == nil {
		return
	}
	e.retire = nil
	if !s.InTable() || s.Status != flowtab.StatusCutoff {
		return
	}
	if s.HWFilter {
		// The filters stay installed under the sketch's FDIR mark; clearing
		// HWFilter keeps finishStream's removeFDIR from tearing them down.
		// The deadline heap still expires them (expireFilters clears the
		// sketch mark when no record claims the key).
		e.sketch.MarkFDIR(e.table.Hash(s.Key))
		s.HWFilter = false
	}
	e.finishStream(s, flowtab.StatusCutoff)
}

// initStream resolves a new stream's configuration and fires its creation
// event. h is the flow hash process already computed: the journal sampler
// consumes its top bits, so the sampling decision costs one compare.
func (e *Engine) initStream(s *flowtab.Stream, x *streamExt, p *pkt.Packet, h uint64) {
	e.c.streamsCreated.Add(1)
	if e.mm.UnderPPL() {
		e.m.flight.Note(e.coreID, metrics.FlightStreamCreate, int64(s.ID), int64(s.Priority))
	}
	if e.cfg.Filter != nil && !e.cfg.Filter.Match(p) {
		// Neither direction matches ⇒ the stream is uninteresting. A
		// directional filter (e.g. "src port 80") must still keep both
		// directions of matching connections.
		rev := *p
		rev.Key = p.Key.Reverse()
		if !e.cfg.Filter.Match(&rev) {
			x.ignored = true
			return
		}
	}
	s.Cutoff = e.cfg.resolveCutoff(p, s.Dir)
	s.ChunkSize = e.cfg.ChunkSize
	s.OverlapSize = e.cfg.OverlapSize
	s.FlushTimeout = e.cfg.FlushTimeout
	s.InactivityTimeout = e.cfg.InactivityTimeout
	if s.Opposite != nil {
		s.Priority = s.Opposite.Priority
	} else {
		s.Priority = e.packetPriority(p)
	}
	if p.Key.Proto == pkt.ProtoTCP {
		s.Asm = reassembly.New(reassembly.Config{
			Mode:   e.cfg.Mode,
			Policy: e.cfg.resolvePolicy(p.Key.DstIP),
		})
	}
	x.filterTimeout = e.cfg.InactivityTimeout
	if e.scope != nil && e.scope.SampleNew(h) {
		e.jbind(s, x, true)
		e.jnote(x, streamscope.EvCreated, int64(s.Priority), s.Cutoff)
	}
	e.push(event.Event{Type: event.Creation, Stream: s, Info: s.Snapshot(0)})
}

// jbind acquires a journal for s on this engine's pool. sampled=false marks
// an anomaly promotion. Cold relative to the packet rate: it runs once per
// journaled stream, and is alloc-free either way.
func (e *Engine) jbind(s *flowtab.Stream, x *streamExt, sampled bool) {
	x.j, x.jGen = e.scope.Acquire(e.coreID, streamscope.Binding{
		ID:       s.ID,
		Key:      s.Key,
		Dir:      uint8(s.Dir),
		Priority: s.Priority,
		Created:  s.Stats.Start,
		Sampled:  sampled,
	})
}

// jnote records one lifecycle event on the stream's journal, if it has one
// and the pool has not rebound it to a newer stream. The generation check is
// exact, not racy: journals are rebound only by this engine goroutine.
//
//scap:hotpath
func (e *Engine) jnote(x *streamExt, kind streamscope.EventKind, a, b int64) {
	j := x.j
	if j == nil || j.Gen() != x.jGen {
		return
	}
	j.Note(kind, e.now, a, b)
}

// janomaly flags an anomaly on the stream's journal, promoting the stream
// into the journal pool first if sampling skipped it — anomalous streams are
// always journaled regardless of the sampling rate.
//
//scap:hotpath
func (e *Engine) janomaly(s *flowtab.Stream, x *streamExt, bit uint64, kind streamscope.EventKind, a, b int64) {
	if e.scope == nil || x.ignored {
		return
	}
	j := x.j
	if j == nil || j.Gen() != x.jGen {
		e.jbind(s, x, false)
		j = x.j
	}
	first := !j.Anomalous()
	j.NoteAnomaly(bit, kind, e.now, a, b)
	if first {
		e.scope.CountAnomaly(e.coreID)
	}
}

// jcheckOverlap emits an overlap event when the assembler's overlap totals
// moved since the last check. Called after each TCP segment only when the
// scope is enabled; the common case is two loads and two compares.
//
//scap:hotpath
func (e *Engine) jcheckOverlap(s *flowtab.Stream, x *streamExt) {
	oldWins, newWins := s.Asm.Overlaps()
	if oldWins == x.jOldWins && newWins == x.jNewWins {
		return
	}
	x.jOldWins, x.jNewWins = oldWins, newWins
	e.janomaly(s, x, streamscope.AnomOverlap, streamscope.EvOverlap, int64(oldWins), int64(newWins))
}

//scap:hotpath
func (e *Engine) processTCP(s *flowtab.Stream, x *streamExt, p *pkt.Packet) {
	if p.HasFlag(pkt.FlagSYN) {
		s.SawSYN = true
		if s.Asm != nil {
			s.Asm.Init(p.Seq)
		}
		if s.Opposite != nil && s.Opposite.SawSYN {
			s.SawHandshake = true
			s.Opposite.SawHandshake = true
		}
		return // SYN segments carry no stream data we deliver
	}

	if p.TCPFlags&pkt.FlagRST != 0 {
		s.HasFIN = true
		s.FINSeq = p.Seq
		e.terminatePair(s, flowtab.StatusClosed)
		return
	}

	if len(p.Payload) > 0 {
		if !s.SawSYN {
			s.Error |= reassembly.FlagBadHandshake
		}
		e.processPayloadBytes(s, x, p, p.Payload, true)
	}

	if p.TCPFlags&pkt.FlagFIN != 0 {
		s.HasFIN = true
		s.FINSeq = p.Seq + uint32(len(p.Payload))
		if s.Opposite == nil || s.Opposite.HasFIN {
			e.terminatePair(s, flowtab.StatusClosed)
		}
	}
}

// processPayloadBytes runs the cutoff check, PPL admission, and per-packet
// record keeping, then routes the payload through the assembler (viaAsm,
// the TCP path) or straight to the chunk (datagram protocols).
//
//scap:hotpath
func (e *Engine) processPayloadBytes(s *flowtab.Stream, x *streamExt, p *pkt.Packet, payload []byte, viaAsm bool) {
	n := len(payload)
	if n == 0 {
		return
	}
	s.Stats.PayloadBytes += uint64(n)
	e.c.payloadBytes.Add(uint64(n))

	if x.discard || s.Status == flowtab.StatusCutoff {
		s.Stats.DiscardedPkts++
		s.Stats.DiscardedBytes += uint64(n)
		e.c.cutoffPkts.Add(1)
		e.c.cutoffBytes.Add(uint64(n))
		// Data arriving for a cutoff stream means its NIC filter expired
		// or was evicted: re-install with a doubled timeout (§5.5).
		e.reinstallFDIR(s, x)
		return
	}

	pos := int64(s.Stats.CapturedBytes)
	if cut := e.effCutoff(s.Cutoff); cut >= 0 && pos >= cut {
		e.reachCutoff(s, x)
		s.Stats.DiscardedPkts++
		s.Stats.DiscardedBytes += uint64(n)
		e.c.cutoffPkts.Add(1)
		e.c.cutoffBytes.Add(uint64(n))
		return
	}

	switch e.mm.Decide(s.Priority, pos, n) {
	case mem.Admit:
	default:
		s.Stats.DroppedPkts++
		s.Stats.DroppedBytes += uint64(n)
		e.c.pplDroppedPkts.Add(1)
		e.c.pplDroppedBytes.Add(uint64(n))
		e.janomaly(s, x, streamscope.AnomPPLDrop, streamscope.EvPPLDrop, int64(n), int64(s.Priority))
		return
	}

	if x.j != nil && !x.jFirst {
		x.jFirst = true
		e.jnote(x, streamscope.EvFirstPayload, int64(n), 0)
	}
	if e.cfg.NeedPkts {
		e.recordPacket(s, x, p, n)
	}
	e.curStream, e.curExt = s, x
	if viaAsm {
		s.Asm.Segment(p.Seq, payload, e.emitCb)
		if e.scope != nil {
			e.jcheckOverlap(s, x)
		}
	} else {
		e.appendData(s, x, payload, false)
	}
}

// emitToCur appends assembler output to the current stream's chunk. It is
// bound to emitCb at construction; see the field comment.
//
//scap:hotpath
func (e *Engine) emitToCur(b []byte, hole bool) {
	if hole {
		e.janomaly(e.curStream, e.curExt, streamscope.AnomGap, streamscope.EvGap, int64(len(b)), 0)
	}
	e.appendData(e.curStream, e.curExt, b, hole)
}

// flushToCur is emitToCur for final flushes, where a stream that has
// already been cut off or discarded must not regain data.
func (e *Engine) flushToCur(b []byte, hole bool) {
	if e.curStream.Status == flowtab.StatusActive {
		if hole {
			e.janomaly(e.curStream, e.curExt, streamscope.AnomGap, streamscope.EvGap, int64(len(b)), 0)
		}
		e.appendData(e.curStream, e.curExt, b, hole)
	}
}

// recordPacket appends a packet record to the current chunk. Off points at
// the chunk position where in-order payload will land; out-of-order bytes
// get Len 0 (their payload lands elsewhere after reassembly).
//
//scap:hotpath
func (e *Engine) recordPacket(s *flowtab.Stream, x *streamExt, p *pkt.Packet, n int) {
	if x.chunk.buf == nil {
		x.chunk = e.newChunkBuf(s, x, nil, e.now)
		e.markDirty(s, x)
	}
	rec := event.PacketRecord{
		TS:      p.Timestamp,
		WireLen: p.WireLen,
		CapLen:  len(p.Data),
		Seq:     p.Seq,
		Flags:   p.TCPFlags,
	}
	inOrder := s.Asm == nil || !s.Asm.Initialized() || p.Seq == s.Asm.NextSeq()
	if inOrder {
		rec.Off = int32(x.chunk.fill())
		rec.Len = int32(n)
	}
	c := &x.chunk
	if len(c.pkts) == cap(c.pkts) {
		e.growPktRecords(c)
	}
	k := len(c.pkts)
	c.pkts = c.pkts[:k+1]
	c.pkts[k] = rec
}

// pktRecInitCap is the initial capacity of a block's packet-record slab.
const pktRecInitCap = 16

// growPktRecords doubles a chunk's record slab and re-parks it as the
// block's attachment, so the grown capacity is reused by every later chunk
// built in that block. Cold: each block pays the growth ramp once, then the
// record path is a slot write for the rest of the block's life.
func (e *Engine) growPktRecords(c *chunkState) {
	newCap := 2 * cap(c.pkts)
	if newCap < pktRecInitCap {
		newCap = pktRecInitCap
	}
	recs := make([]event.PacketRecord, len(c.pkts), newCap)
	copy(recs, c.pkts)
	c.pkts = recs
	if c.blk != mem.NoBlock {
		e.mm.SetBlockAttachment(c.blk, recs)
	}
}

// appendData copies reassembled bytes into the stream's chunk, enforcing
// the cutoff and delivering chunks as they fill.
//
//scap:hotpath
func (e *Engine) appendData(s *flowtab.Stream, x *streamExt, b []byte, hole bool) {
	if hole {
		s.Error |= reassembly.FlagHole
	}
	for len(b) > 0 {
		if cut := e.effCutoff(s.Cutoff); cut >= 0 {
			remain := cut - int64(s.Stats.CapturedBytes)
			if remain <= 0 {
				e.reachCutoff(s, x)
				s.Stats.DiscardedBytes += uint64(len(b))
				e.c.cutoffBytes.Add(uint64(len(b)))
				return
			}
			if int64(len(b)) > remain {
				head := b[:remain]
				tail := b[remain:]
				e.appendData(s, x, head, hole)
				s.Stats.DiscardedBytes += uint64(len(tail))
				e.c.cutoffBytes.Add(uint64(len(tail)))
				e.reachCutoff(s, x)
				return
			}
		}
		if x.chunk.buf == nil {
			x.chunk = e.newChunkBuf(s, x, nil, e.now)
			e.markDirty(s, x)
		}
		c := &x.chunk
		if hole {
			c.holeBefore = true
			hole = false
		}
		room := c.room()
		if room == 0 {
			e.deliverChunk(s, x, false)
			continue
		}
		take := len(b)
		if take > room {
			take = room
		}
		if c.fill() == c.overlapLen {
			c.firstTS = e.now
		}
		// take <= room keeps the fill inside the block's storage, so the
		// reslice-and-copy never allocates.
		n := len(c.buf)
		c.buf = c.buf[:n+take]
		copy(c.buf[n:], b[:take])
		b = b[take:]
		s.Stats.CapturedBytes += uint64(take)
		e.c.storedBytes.Add(uint64(take))
		e.mm.Reserve(take)
		e.markDirty(s, x)
		if c.room() == 0 {
			e.deliverChunk(s, x, false)
		}
	}
}

// deliverChunk emits the current chunk as a data event and starts its
// successor (unless last).
func (e *Engine) deliverChunk(s *flowtab.Stream, x *streamExt, last bool) {
	c := &x.chunk
	hasNew := c.fill() > c.overlapLen || c.extraAcct > 0
	if !hasNew {
		if last {
			e.dropChunk(s, x)
		}
		return
	}
	x.chunksDelivered++
	e.m.chunkBytes.ObserveEx(e.coreID, uint64(c.fill()), s.ID)
	e.jnote(x, streamscope.EvChunkFlush, int64(c.fill()), e.now-c.firstTS)
	ev := event.Event{
		Type:       event.Data,
		Stream:     s,
		Info:       s.Snapshot(x.chunksDelivered),
		Data:       c.buf,
		HoleBefore: c.holeBefore,
		Last:       last,
		Accounted:  c.accounted(),
		Pkts:       c.pkts,
		Block:      c.blk,
	}
	prev := c.buf
	if last {
		x.chunk = chunkState{}
		delete(e.dirty, s)
	} else {
		x.chunk = e.newChunkBuf(s, x, prev, e.now)
		if x.chunk.fill() > 0 {
			e.markDirty(s, x)
		} else {
			delete(e.dirty, s)
		}
	}
	e.push(ev)
}

// dropChunk releases an undelivered chunk's memory (discard/termination of
// an empty tail).
func (e *Engine) dropChunk(s *flowtab.Stream, x *streamExt) {
	if acct := x.chunk.accounted(); acct > 0 {
		e.mm.Release(acct)
	}
	if x.chunk.blk != mem.NoBlock {
		e.mm.FreeBlock(e.coreID, x.chunk.blk)
	}
	x.chunk = chunkState{}
	delete(e.dirty, s)
}

// evBatchMax bounds staged events so timer sweeps and shutdowns over large
// tables flush incrementally instead of hoarding the whole table's events.
const evBatchMax = 256

// push stages an event for the next flush.
//
//scap:hotpath
func (e *Engine) push(ev event.Event) {
	// evBuf is preallocated at evBatchMax and flushed before it would
	// overflow, so the reslice below stays inside its capacity.
	n := len(e.evBuf)
	e.evBuf = e.evBuf[:n+1]
	e.evBuf[n] = ev
	if n+1 >= evBatchMax {
		e.flushEvents()
	}
}

// flushEvents publishes the staged events to the ring in one batch. Events
// the ring cannot take are accounted as lost and their chunk memory is
// released, exactly like the old per-event push on a full queue.
func (e *Engine) flushEvents() {
	if len(e.evBuf) == 0 {
		return
	}
	now := metrics.Nanotime()
	if e.stageStart > 0 {
		// The batch's lead stream serves as the latency exemplar: a tail
		// observation here links the p99 to a concrete journal.
		e.m.stageRing.ObserveEx(e.coreID, uint64(now-e.stageStart), e.evBuf[0].Info.ID)
		e.stageStart = 0
	}
	for i := range e.evBuf {
		e.evBuf[i].EnqueueNS = now
	}
	n := e.q.PushBatch(e.evBuf)
	e.m.eventBatch.Observe(e.coreID, uint64(n))
	if lost := len(e.evBuf) - n; lost > 0 {
		e.m.events.Record(metrics.Event{
			Kind:  metrics.EvEventRingOverflow,
			Core:  e.coreID,
			Value: int64(lost),
		})
		e.m.flight.Note(e.coreID, metrics.FlightRingOverflow, int64(lost), 0)
	}
	for i := n; i < len(e.evBuf); i++ {
		ev := &e.evBuf[i]
		e.c.eventsLost.Add(1)
		e.c.eventsLostBytes.Add(uint64(len(ev.Data)))
		if ev.Accounted > 0 {
			e.mm.Release(ev.Accounted)
		}
		if ev.Block != mem.NoBlock {
			e.mm.FreeBlock(e.coreID, ev.Block)
		}
	}
	// Zero the staging area so chunk buffers are not pinned until the
	// slots are overwritten by a later burst.
	clear(e.evBuf)
	e.evBuf = e.evBuf[:0]
}

// markDirty enrolls a stream for the flush-timeout scan. Streams with no
// flush timeout are kept out of the set entirely: at a million concurrent
// flows, enrolling every buffered stream would make each CheckTimers tick
// walk the whole table for a timeout that can never fire (the ctrl path
// re-enrolls a stream when a timeout is set later).
func (e *Engine) markDirty(s *flowtab.Stream, x *streamExt) {
	if s.FlushTimeout <= 0 {
		return
	}
	if x.chunk.fill() > x.chunk.overlapLen || x.chunk.extraAcct > 0 {
		e.dirty[s] = struct{}{}
	}
}

// reachCutoff transitions a stream to the cutoff state: its last chunk is
// delivered, further data is discarded, and — with FDIR enabled — the NIC
// stops delivering its data packets at all (subzero copy).
func (e *Engine) reachCutoff(s *flowtab.Stream, x *streamExt) {
	if s.Status != flowtab.StatusActive {
		return
	}
	s.Status = flowtab.StatusCutoff
	e.m.flight.Note(e.coreID, metrics.FlightCutoff, int64(s.ID), int64(s.Stats.Bytes))
	e.janomaly(s, x, streamscope.AnomCutoff, streamscope.EvCutoff, int64(s.Stats.CapturedBytes), int64(s.Stats.Bytes))
	e.deliverChunk(s, x, false)
	e.installFDIR(s, x)
	// With the sketch front-end on, a cutoff stream of suppressible
	// priority no longer needs its record: schedule retirement for the end
	// of the packet (finishRetired).
	if e.sketch != nil && s.Priority <= e.cfg.Sketch.SuppressMaxPriority {
		e.retire = s
	}
}

// installFDIR installs the per-stream drop-filter pair: ACK-only and
// ACK|PSH data packets die at the NIC while RST/FIN still reach the engine
// for termination and FIN-sequence statistics (§5.5).
func (e *Engine) installFDIR(s *flowtab.Stream, x *streamExt) {
	if !e.cfg.UseFDIR || e.nicDev == nil || !e.caps.HasFilters() || s.HWFilter || s.Key.Proto != pkt.ProtoTCP {
		return
	}
	deadline := e.now + x.filterTimeout
	for _, flags := range []uint8{pkt.FlagACK, pkt.FlagACK | pkt.FlagPSH} {
		evicted, did, err := e.nicDev.AddFilter(nic.FilterSpec{
			Key:      s.Key,
			Flex:     nic.FlexOnlyFlags(flags),
			Action:   nic.ActionDrop,
			Deadline: deadline,
		})
		if err != nil {
			return
		}
		if did {
			// The evicted filter may belong to a stream on any core; if it
			// is ours, clear its flag so it re-installs on next packet.
			if other := e.table.Lookup(evicted); other != nil {
				other.HWFilter = false
			}
		}
	}
	s.HWFilter = true
	e.c.fdirInstalled.Add(1)
	e.m.events.Record(metrics.Event{Kind: metrics.EvFDIRInstall, Core: e.coreID, Value: int64(s.ID)})
	e.m.flight.Note(e.coreID, metrics.FlightFDIRInstall, int64(s.ID), 0)
	e.janomaly(s, x, streamscope.AnomFDIR, streamscope.EvFDIRInstall, int64(s.ID), 0)
	heap.Push(&e.filters, filterEntry{deadline: deadline, key: s.Key, id: s.ID})
}

// reinstallFDIR re-adds an expired/evicted filter with a doubled timeout.
func (e *Engine) reinstallFDIR(s *flowtab.Stream, x *streamExt) {
	if !e.cfg.UseFDIR || e.nicDev == nil || !e.caps.HasFilters() || s.Key.Proto != pkt.ProtoTCP {
		return
	}
	if s.HWFilter {
		// A data packet slipped past an installed filter (e.g. TCP
		// options changed the flex bytes); nothing to do.
		return
	}
	const maxFilterTimeout = int64(3600e9)
	x.filterTimeout *= 2
	if x.filterTimeout > maxFilterTimeout {
		x.filterTimeout = maxFilterTimeout
	}
	e.installFDIR(s, x)
}

// removeFDIR removes a stream's filters on termination.
func (e *Engine) removeFDIR(s *flowtab.Stream) {
	if s.HWFilter && e.nicDev != nil {
		e.nicDev.RemoveFilters(s.Key, false)
		s.HWFilter = false
		e.c.fdirRemoved.Add(1)
		e.m.events.Record(metrics.Event{Kind: metrics.EvFDIRRemove, Core: e.coreID, Value: int64(s.ID)})
		e.m.flight.Note(e.coreID, metrics.FlightFDIRRemove, int64(s.ID), 0)
	}
}

// terminatePair ends both directions of a connection.
func (e *Engine) terminatePair(s *flowtab.Stream, status flowtab.Status) {
	opp := s.Opposite
	e.finishStream(s, status)
	if opp != nil && opp.InTable() {
		e.finishStream(opp, status)
	}
}

// finishStream flushes, emits the final data and termination events, and
// retires the record.
func (e *Engine) finishStream(s *flowtab.Stream, status flowtab.Status) {
	x := ext(s)
	if s.Asm != nil {
		e.curStream, e.curExt = s, x
		s.Asm.Flush(e.flushCb)
	}
	if s.Status == flowtab.StatusActive || s.Status == flowtab.StatusCutoff {
		e.deliverChunk(s, x, true)
	} else {
		e.dropChunk(s, x)
	}
	s.Status = status
	s.Error |= func() reassembly.Flags {
		if s.Asm != nil {
			return s.Asm.Flags()
		}
		return 0
	}()
	switch status {
	case flowtab.StatusClosed:
		e.c.streamsClosed.Add(1)
	case flowtab.StatusTimedOut:
		e.c.streamsExpired.Add(1)
	case flowtab.StatusEvicted:
		e.c.streamsEvicted.Add(1)
	}
	if (status == flowtab.StatusTimedOut || status == flowtab.StatusEvicted) && e.mm.UnderPPL() {
		e.m.flight.Note(e.coreID, metrics.FlightStreamExpire, int64(s.ID), int64(status))
	}
	if s.Asm != nil {
		as := s.Asm.Stats()
		e.c.asmDuplicateBytes.Add(as.DuplicateBytes)
		e.c.asmDeliveredBytes.Add(as.DeliveredBytes)
		e.c.asmHolesSkipped.Add(as.HolesSkipped)
		e.c.asmOutOfOrder.Add(as.OutOfOrderSegs)
		e.c.asmDroppedSegs.Add(as.DroppedSegments)
	}
	e.removeFDIR(s)
	e.jnote(x, streamscope.EvClose, int64(status), int64(s.Stats.CapturedBytes))
	if !x.ignored {
		e.push(event.Event{Type: event.Termination, Stream: s, Info: s.Snapshot(x.chunksDelivered)})
	}
	delete(e.dirty, s)
	e.table.Remove(s)
	e.table.Recycle(s)
}

// CheckTimers advances the engine's clock work: control messages, flush
// timeouts, inactivity expiry, defragmenter expiry, and FDIR filter
// deadlines. Drivers call it periodically (the paper's kernel module does
// the same from a timer).
func (e *Engine) CheckTimers(now int64) {
	if now > e.now {
		e.now = now
	}
	e.drainCtrl()
	e.flushStaleChunks(now)
	e.expireIdle(now)
	e.expireFilters(now)
	if e.sketch != nil {
		e.installSketchFDIR(now)
	}
	e.publishTableMetrics()
	if e.scope != nil {
		// Journal sampling backs off while the arena is above the PPL
		// watermark and recovers afterwards (Braun-style load adaptation),
		// paced by the timer tick.
		e.scope.Adapt(e.mm.UnderPPL())
	}
	if e.defrag != nil {
		e.defrag.Expire(now)
	}
	e.flushEvents()
}

func (e *Engine) drainCtrl() {
	e.ctrlBuf = e.ctrl.drain(e.ctrlBuf)
	for i := range e.ctrlBuf {
		e.applyCtrl(e.ctrlBuf[i])
	}
	// Control-driven cutoffs (OpSetCutoff) schedule retirement too.
	e.finishRetired()
}

// flushStaleChunks delivers partial chunks older than their stream's flush
// timeout.
func (e *Engine) flushStaleChunks(now int64) {
	for s := range e.dirty {
		x := ext(s)
		ft := s.FlushTimeout
		if ft <= 0 {
			continue
		}
		if x.chunk.fill() > x.chunk.overlapLen && now-x.chunk.firstTS >= ft {
			e.deliverChunk(s, x, false)
		}
	}
}

// sweepGroupsPerTimer bounds the expiry sweep's work per CheckTimers call:
// 4096 slot groups (32768 slots), so tables up to that size are still fully
// scanned in one call — the historical per-timer behavior — while
// million-flow tables amortize the scan across successive calls, keeping
// each timer tick O(1) instead of O(table).
const sweepGroupsPerTimer = 4096

// expireIdle removes streams idle past their inactivity timeout using the
// table's incremental generation sweep (§5.2). Victims are collected during
// the sweep and finished after it, since finishing mutates the table.
func (e *Engine) expireIdle(now int64) {
	e.victims = e.victims[:0]
	e.table.Sweep(now, sweepGroupsPerTimer, func(s *flowtab.Stream) {
		if s.HWFilter {
			// The NIC is dropping this stream's packets on our behalf;
			// silence is expected, not inactivity. The filter's own
			// deadline (expireFilters) restores visibility first.
			return
		}
		tmo := s.InactivityTimeout
		if tmo <= 0 {
			tmo = e.cfg.InactivityTimeout
		}
		if s.LastAccess()+tmo <= now {
			e.victims = append(e.victims, s)
		}
	})
	for _, s := range e.victims {
		if s.InTable() {
			e.finishStream(s, flowtab.StatusTimedOut)
		}
	}
	clear(e.victims)
}

// expireFilters removes FDIR filters whose deadline passed; the stream (if
// still alive) will re-install with a doubled timeout when its packets
// reappear.
func (e *Engine) expireFilters(now int64) {
	for len(e.filters) > 0 && e.filters[0].deadline <= now {
		fe := heap.Pop(&e.filters).(filterEntry)
		if e.nicDev != nil {
			if removed := e.nicDev.RemoveFilters(fe.key, false); removed > 0 {
				e.c.fdirRemoved.Add(1)
				e.m.events.Record(metrics.Event{Kind: metrics.EvFDIRRemove, Core: e.coreID, Value: int64(fe.id)})
			}
		}
		if s := e.table.Lookup(fe.key); s != nil && s.ID == fe.id {
			s.HWFilter = false
		} else if s == nil && e.sketch != nil {
			// No record claims this key: the filters belonged to a retired
			// (sketch-handled) flow. Clear the heavy entry's mark so a
			// still-heavy flow is re-nominated by installSketchFDIR.
			e.sketch.ClearFDIR(e.table.Hash(fe.key))
		}
		if fe.id == 0 && e.sketchFDIRLive > 0 {
			// id 0 marks sketch-owned entries; its expiry frees budget.
			e.sketchFDIRLive--
		}
	}
}

// installSketchFDIR nominates sketch heavy hitters for NIC drop-filter
// pairs: flows big enough to have passed a cutoff, with no record left to
// drive the per-stream install path — §5.5 subzero copy driven from the
// sketch, so record-suppressed elephants stop costing even the sketch
// update. Runs from the timer path at heavy-table granularity.
func (e *Engine) installSketchFDIR(now int64) {
	if !e.cfg.UseFDIR || e.nicDev == nil || !e.caps.HasFilters() {
		return
	}
	e.sketch.ForEachHeavy(func(hf *sketch.Heavy) {
		if e.sketchFDIRBudget >= 0 && e.sketchFDIRLive >= e.sketchFDIRBudget {
			return // budget exhausted: wait for installed filters to expire
		}
		if hf.FDIR || hf.Key.Proto != pkt.ProtoTCP || hf.Priority > e.cfg.Sketch.SuppressMaxPriority {
			return
		}
		if e.table.Lookup(hf.Key) != nil {
			return // tracked: the record's own cutoff path owns its filters
		}
		deadline := now + e.cfg.InactivityTimeout
		for _, flags := range []uint8{pkt.FlagACK, pkt.FlagACK | pkt.FlagPSH} {
			evicted, did, err := e.nicDev.AddFilter(nic.FilterSpec{
				Key:      hf.Key,
				Flex:     nic.FlexOnlyFlags(flags),
				Action:   nic.ActionDrop,
				Deadline: deadline,
			})
			if err != nil {
				return
			}
			if did {
				if other := e.table.Lookup(evicted); other != nil {
					other.HWFilter = false
				}
				e.sketch.ClearFDIR(e.table.Hash(evicted))
			}
		}
		hf.FDIR = true
		e.c.fdirInstalled.Add(1)
		e.m.events.Record(metrics.Event{Kind: metrics.EvFDIRInstall, Core: e.coreID, Value: 0})
		// id 0 never matches a stream ID, marking the entry sketch-owned.
		heap.Push(&e.filters, filterEntry{deadline: deadline, key: hf.Key, id: 0})
		e.sketchFDIRLive++
	})
}

// publishTableMetrics copies the flow table's plain counters (as deltas)
// and occupancy gauges into the registry, and publishes a fresh sketch
// snapshot. Timer-path only, so the hot path never touches the registry for
// table bookkeeping.
func (e *Engine) publishTableMetrics() {
	t := e.table
	e.c.flowtabLookups.Add(t.Lookups - e.prevLookups)
	e.prevLookups = t.Lookups
	e.c.flowtabProbes.Add(t.Probes - e.prevProbes)
	e.prevProbes = t.Probes
	e.c.flowtabSwept.Add(t.SweptGroups - e.prevSwept)
	e.prevSwept = t.SweptGroups
	e.c.flowtabGrows.Add(t.Grows - e.prevGrows)
	e.prevGrows = t.Grows
	e.c.flowtabOccupancy.Set(int64(t.Len()))
	e.c.flowtabCapacity.Set(int64(t.Cap()))
	e.c.flowtabTombstones.Set(int64(t.Tombstones()))
	if e.sketch != nil {
		e.c.sketchObservedPkts.Add(e.sketch.ObservedPkts() - e.prevSkPkts)
		e.prevSkPkts = e.sketch.ObservedPkts()
		e.c.sketchObservedBytes.Add(e.sketch.ObservedBytes() - e.prevSkBytes)
		e.prevSkBytes = e.sketch.ObservedBytes()
		e.c.sketchHeavies.Set(int64(e.sketch.HeavyCount()))
		e.sketch.Publish()
	}
}

// Shutdown terminates every tracked stream, emitting final events.
func (e *Engine) Shutdown() {
	e.drainCtrl()
	var all []*flowtab.Stream
	e.table.Walk(func(s *flowtab.Stream) bool {
		all = append(all, s)
		return true
	})
	for _, s := range all {
		if s.InTable() {
			e.finishStream(s, flowtab.StatusTimedOut)
		}
	}
	e.flushEvents()
}
