// Package classify implements stream-head traffic classification — the
// second application family the paper motivates (its introduction cites
// traffic-classification tools next to NIDSs, and the evaluation's cutoff
// experiments build on the observation that the first bytes of a stream
// identify it). Classification looks only at the head of each direction,
// which is exactly what a Scap cutoff delivers cheaply.
//
// Three layers of machinery:
//
//   - Sniff: protocol identification from the first payload bytes;
//   - ParseClientHello: TLS SNI/version extraction from a client stream;
//   - ParseDNSQuery: DNS query name/type from a UDP datagram.
package classify

import "bytes"

// Protocol is an identified application protocol.
type Protocol uint8

// Identifiable protocols.
const (
	Unknown Protocol = iota
	HTTP
	TLS
	SSH
	SMTP
	FTP
	DNS
	RTMP
)

func (p Protocol) String() string {
	switch p {
	case HTTP:
		return "http"
	case TLS:
		return "tls"
	case SSH:
		return "ssh"
	case SMTP:
		return "smtp"
	case FTP:
		return "ftp"
	case DNS:
		return "dns"
	case RTMP:
		return "rtmp"
	}
	return "unknown"
}

var httpMethods = [][]byte{
	[]byte("GET "), []byte("POST "), []byte("PUT "), []byte("HEAD "),
	[]byte("DELETE "), []byte("OPTIONS "), []byte("CONNECT "), []byte("PATCH "),
	[]byte("HTTP/1."),
}

// Sniff identifies the protocol from the first payload bytes of a stream
// direction. dir distinguishes client-sent from server-sent heads (some
// protocols, like SMTP, greet from the server side). It is content-based:
// ports are not consulted, matching the paper's observation that port
// numbers no longer identify applications.
func Sniff(head []byte, serverSide bool) Protocol {
	if len(head) == 0 {
		return Unknown
	}
	for _, m := range httpMethods {
		if bytes.HasPrefix(head, m) {
			return HTTP
		}
	}
	// TLS record: ContentType=22 (handshake), legacy version 3.x.
	if len(head) >= 3 && head[0] == 0x16 && head[1] == 0x03 && head[2] <= 0x04 {
		return TLS
	}
	if bytes.HasPrefix(head, []byte("SSH-")) {
		return SSH
	}
	// RTMP handshake: version byte 0x03 followed by a 1536-byte chunk.
	if head[0] == 0x03 && len(head) >= 1537 {
		return RTMP
	}
	if serverSide {
		// SMTP and FTP greet with a 3-digit code.
		if len(head) >= 4 && head[3] == ' ' || len(head) >= 4 && head[3] == '-' {
			if bytes.HasPrefix(head, []byte("220")) {
				// Both SMTP and FTP use 220; SMTP banners conventionally
				// contain "SMTP" or "ESMTP".
				if bytes.Contains(firstLine(head), []byte("SMTP")) {
					return SMTP
				}
				return FTP
			}
		}
	} else {
		if bytes.HasPrefix(head, []byte("EHLO ")) || bytes.HasPrefix(head, []byte("HELO ")) ||
			bytes.HasPrefix(head, []byte("MAIL FROM:")) {
			return SMTP
		}
		if bytes.HasPrefix(head, []byte("USER ")) || bytes.HasPrefix(head, []byte("PASS ")) {
			return FTP
		}
	}
	return Unknown
}

func firstLine(b []byte) []byte {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[:i]
	}
	return b
}
