package bpf

import (
	"math/rand"
	"net/netip"
	"testing"

	"scap/internal/pkt"
)

// mk builds a decoded packet for matching tests.
func mk(proto uint8, src string, sp uint16, dst string, dp uint16, wire int) *pkt.Packet {
	return &pkt.Packet{
		WireLen:   wire,
		IPVersion: ipVersionOf(src),
		Key: pkt.FlowKey{
			SrcIP:   pkt.MustAddr(src),
			DstIP:   pkt.MustAddr(dst),
			SrcPort: sp, DstPort: dp,
			Proto: proto,
		},
	}
}

func ipVersionOf(s string) uint8 {
	if pkt.MustAddr(s).Is4() {
		return 4
	}
	return 6
}

func TestFilterSemantics(t *testing.T) {
	web := mk(pkt.ProtoTCP, "10.0.0.1", 49152, "93.184.216.34", 80, 1500)
	dns := mk(pkt.ProtoUDP, "10.0.0.1", 5353, "8.8.8.8", 53, 90)
	ssh6 := mk(pkt.ProtoTCP, "2001:db8::1", 40000, "2001:db8::2", 22, 200)

	cases := []struct {
		expr string
		p    *pkt.Packet
		want bool
	}{
		{"", web, true},
		{"tcp", web, true},
		{"tcp", dns, false},
		{"udp", dns, true},
		{"port 80", web, true},
		{"port 80", dns, false},
		{"tcp port 80", web, true},
		{"tcp port 53", dns, false},
		{"udp port 53", dns, true},
		{"src port 49152", web, true},
		{"dst port 49152", web, false},
		{"portrange 50-100", web, true}, // dst 80 in range
		{"src portrange 50-100", web, false},
		{"host 10.0.0.1", web, true},
		{"host 10.0.0.2", web, false},
		{"src host 10.0.0.1", web, true},
		{"dst host 10.0.0.1", web, false},
		{"net 10.0.0.0/8", web, true},
		{"net 10.1.0.0/16", web, false},
		{"dst net 93.184.0.0/16", web, true},
		{"src net 93.184.0.0/16", web, false},
		{"net 8.8.8.8", dns, true}, // bare address = full-length prefix
		{"ip", web, true},
		{"ip", ssh6, false},
		{"ip6", ssh6, true},
		{"ip proto 6", web, true},
		{"proto 17", dns, true},
		{"less 100", dns, true},
		{"less 100", web, false},
		{"greater 1000", web, true},
		{"not tcp", dns, true},
		{"!tcp", dns, true},
		{"not not tcp", web, true},
		{"tcp and port 80", web, true},
		{"tcp && port 80", web, true},
		{"tcp and port 81", web, false},
		{"tcp or udp", dns, true},
		{"tcp || udp", dns, true},
		{"(tcp or udp) and host 8.8.8.8", dns, true},
		{"tcp or udp and host 1.2.3.4", web, true}, // 'and' binds tighter
		{"not (tcp and port 80)", web, false},
		{"host 2001:db8::2 and tcp port 22", ssh6, true},
		{"src net 2001:db8::/32", ssh6, true},
		{"udp or icmp or port 22", ssh6, true},
	}
	for _, c := range cases {
		f, err := Parse(c.expr)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.expr, err)
			continue
		}
		if got := f.Match(c.p); got != c.want {
			t.Errorf("Match(%q, %v) = %v, want %v (ast: %s)", c.expr, c.p.Key, got, c.want, f)
		}
		if got := f.MatchInterpreted(c.p); got != c.want {
			t.Errorf("MatchInterpreted(%q) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"tcp and",
		"port",
		"port 70000",
		"portrange 100-50",
		"portrange 100:200",
		"host not.an.address..",
		"net 10.0.0.0/33",
		"(tcp",
		"tcp)",
		"tcp tcp",
		"frobnicate 7",
		"&& tcp",
		"tcp & udp",
		"proto 256",
	}
	for _, expr := range bad {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", expr)
		}
	}
}

func TestNilFilterMatchesAll(t *testing.T) {
	var f *Filter
	if !f.Match(mk(pkt.ProtoTCP, "1.2.3.4", 1, "5.6.7.8", 2, 60)) {
		t.Error("nil filter must match")
	}
	if f.Expr() != "" || f.Len() != 0 {
		t.Error("nil filter accessors")
	}
}

// TestCompiledMatchesInterpreted is the differential property test: for
// random expressions and random packets, the stack VM and the AST evaluator
// must agree.
func TestCompiledMatchesInterpreted(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		expr := randExpr(r, 0)
		f, err := Parse(expr.String())
		if err != nil {
			t.Fatalf("generated expression %q failed to parse: %v", expr, err)
		}
		for i := 0; i < 20; i++ {
			p := randPacket(r)
			vm := f.Match(p)
			ref := f.MatchInterpreted(p)
			if vm != ref {
				t.Fatalf("disagreement on %q for %v: vm=%v ref=%v", expr, p.Key, vm, ref)
			}
		}
	}
}

// randExpr builds a random AST whose String() re-parses to the same
// semantics (the String forms are fully parenthesized).
func randExpr(r *rand.Rand, depth int) node {
	if depth > 4 || r.Intn(3) == 0 {
		switch r.Intn(6) {
		case 0:
			return &protoNode{[]uint8{pkt.ProtoTCP, pkt.ProtoUDP, pkt.ProtoICMP}[r.Intn(3)]}
		case 1:
			lo := uint16(r.Intn(1000))
			return &portNode{dir: dirQual(r.Intn(3)), lo: lo, hi: lo + uint16(r.Intn(100))}
		case 2:
			return &hostNode{dir: dirQual(r.Intn(3)), addr: randIPv4(r)}
		case 3:
			pfx, _ := randIPv4(r).Prefix(8 + r.Intn(25))
			return &netNode{dir: dirQual(r.Intn(3)), prefix: pfx}
		case 4:
			return &lenNode{less: r.Intn(2) == 0, limit: r.Intn(2000)}
		default:
			return &ipVersionNode{uint8(4 + 2*r.Intn(2))}
		}
	}
	switch r.Intn(3) {
	case 0:
		return &andNode{randExpr(r, depth+1), randExpr(r, depth+1)}
	case 1:
		return &orNode{randExpr(r, depth+1), randExpr(r, depth+1)}
	default:
		return &notNode{randExpr(r, depth+1)}
	}
}

func randIPv4(r *rand.Rand) netip.Addr {
	var b [4]byte
	r.Read(b[:])
	if b[0] == 0 {
		b[0] = 1
	}
	return netip.AddrFrom4(b)
}

func randPacket(r *rand.Rand) *pkt.Packet {
	protos := []uint8{pkt.ProtoTCP, pkt.ProtoUDP, pkt.ProtoICMP}
	p := &pkt.Packet{
		WireLen:   40 + r.Intn(1500),
		IPVersion: 4,
		Key: pkt.FlowKey{
			SrcIP:   randIPv4(r),
			DstIP:   randIPv4(r),
			SrcPort: uint16(r.Intn(1100)),
			DstPort: uint16(r.Intn(1100)),
			Proto:   protos[r.Intn(3)],
		},
	}
	return p
}

func TestFilterStringReparses(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		expr := randExpr(r, 0).String()
		f1 := MustParse(expr)
		f2 := MustParse(f1.String())
		for j := 0; j < 10; j++ {
			p := randPacket(r)
			if f1.Match(p) != f2.Match(p) {
				t.Fatalf("reparse of %q changed semantics", expr)
			}
		}
	}
}

func BenchmarkFilterMatch(b *testing.B) {
	f := MustParse("tcp and (port 80 or port 443) and net 10.0.0.0/8")
	p := mk(pkt.ProtoTCP, "10.1.2.3", 50000, "93.184.216.34", 443, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !f.Match(p) {
			b.Fatal("expected match")
		}
	}
}
