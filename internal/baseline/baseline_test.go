package baseline

import (
	"bytes"
	"testing"

	"scap/internal/pcapring"
	"scap/internal/pkt"
	"scap/internal/trace"
)

// runThroughRing replays generated frames through a ring into a consumer.
func runThroughRing(t *testing.T, g *trace.Generator, snaplen int, consume func(pcapring.Frame)) *pcapring.Ring {
	t.Helper()
	ring := pcapring.New(64<<20, snaplen)
	ts := int64(0)
	for {
		f := g.Next()
		if f == nil {
			break
		}
		ts += 1000
		if ring.Push(f, ts) {
			// Consume immediately (no backlog in functional tests).
			fr, _ := ring.Pop()
			consume(fr)
		}
	}
	return ring
}

func TestRingCopyAndOverflow(t *testing.T) {
	r := pcapring.New(1000, 0)
	frame := make([]byte, 400)
	if !r.Push(frame, 1) || !r.Push(frame, 2) {
		t.Fatal("pushes failed")
	}
	if r.Push(frame, 3) { // 3*(400+64) > 1000
		t.Fatal("overflow push succeeded")
	}
	if s := r.Stats(); s.Dropped != 1 || s.Received != 3 {
		t.Errorf("stats = %+v", s)
	}
	// Copy semantics: mutating the source must not affect stored frames.
	frame[0] = 0xAA
	f, _ := r.Pop()
	if f.Data[0] == 0xAA {
		t.Error("ring did not copy the frame")
	}
	r.Pop()
	if _, ok := r.Pop(); ok {
		t.Error("pop from empty ring")
	}
}

func TestRingSnaplen(t *testing.T) {
	r := pcapring.New(1<<20, 96)
	frame := make([]byte, 1500)
	r.Push(frame, 1)
	f, _ := r.Pop()
	if len(f.Data) != 96 || f.WireLen != 1500 {
		t.Errorf("caplen=%d wirelen=%d", len(f.Data), f.WireLen)
	}
}

func TestLibnidsReassemblesStreams(t *testing.T) {
	var delivered bytes.Buffer
	nids := NewLibnids(0, CutoffUnlimited, func(s *UserStream, b []byte) {
		if s.Key.DstPort == 80 {
			delivered.Write(b)
		}
	})
	g := trace.NewGenerator(trace.GenConfig{
		Seed: 1, Flows: 20, Concurrency: 4, TCPFraction: 1,
		MinFlowBytes: 1000, MaxFlowBytes: 5000,
		EmbedPatterns: [][]byte{[]byte("NEEDLE-IN-STREAM")}, EmbedProb: 1,
	})
	runThroughRing(t, g, 0, nids.ProcessFrame)
	nids.Close()
	if !bytes.Contains(delivered.Bytes(), []byte("NEEDLE-IN-STREAM")) {
		t.Error("embedded pattern not delivered by libnids baseline")
	}
	c := nids.Counters()
	if c.StreamsTracked == 0 || c.ReassemblyCopy == 0 {
		t.Errorf("counters = %+v", c)
	}
}

func TestLibnidsRequiresHandshake(t *testing.T) {
	nids := NewLibnids(0, CutoffUnlimited, nil)
	key := pkt.FlowKey{
		SrcIP: pkt.MustAddr("1.1.1.1"), DstIP: pkt.MustAddr("2.2.2.2"),
		SrcPort: 1234, DstPort: 80, Proto: pkt.ProtoTCP,
	}
	data := pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 100, Flags: pkt.FlagACK | pkt.FlagPSH, Payload: []byte("midstream")})
	nids.ProcessFrame(pcapring.Frame{Data: data, TS: 1, WireLen: len(data)})
	if nids.Tracked() != 0 {
		t.Error("libnids tracked a connection without SYN")
	}
	if nids.Counters().StreamsNoSYN != 1 {
		t.Errorf("counters = %+v", nids.Counters())
	}
}

func TestLibnidsTableLimitRejectsNew(t *testing.T) {
	nids := NewLibnids(4, CutoffUnlimited, nil)
	for i := 0; i < 8; i++ {
		key := pkt.FlowKey{
			SrcIP: pkt.MustAddr("1.1.1.1"), DstIP: pkt.MustAddr("2.2.2.2"),
			SrcPort: uint16(1000 + i), DstPort: 80, Proto: pkt.ProtoTCP,
		}
		syn := pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 1, Flags: pkt.FlagSYN})
		nids.ProcessFrame(pcapring.Frame{Data: syn, TS: int64(i), WireLen: len(syn)})
	}
	if nids.Tracked() != 4 {
		t.Errorf("tracked = %d, want 4", nids.Tracked())
	}
	if c := nids.Counters(); c.StreamsRefused != 4 {
		t.Errorf("refused = %d, want 4", c.StreamsRefused)
	}
}

func TestStream5TableLimitEvictsOldest(t *testing.T) {
	s5 := NewStream5(4, 0, CutoffUnlimited, nil)
	for i := 0; i < 8; i++ {
		key := pkt.FlowKey{
			SrcIP: pkt.MustAddr("1.1.1.1"), DstIP: pkt.MustAddr("2.2.2.2"),
			SrcPort: uint16(1000 + i), DstPort: 80, Proto: pkt.ProtoTCP,
		}
		syn := pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 1, Flags: pkt.FlagSYN})
		s5.ProcessFrame(pcapring.Frame{Data: syn, TS: int64(i), WireLen: len(syn)})
	}
	if s5.Tracked() != 4 {
		t.Errorf("tracked = %d, want 4", s5.Tracked())
	}
	if c := s5.Counters(); c.StreamsEvicted != 4 {
		t.Errorf("evicted = %d, want 4", c.StreamsEvicted)
	}
}

func TestUserCutoffTruncates(t *testing.T) {
	var got int
	nids := NewLibnids(0, 100, func(s *UserStream, b []byte) { got += len(b) })
	g := trace.NewGenerator(trace.GenConfig{
		Seed: 3, Flows: 1, Concurrency: 1, TCPFraction: 1,
		MinFlowBytes: 10000, MaxFlowBytes: 10001,
	})
	runThroughRing(t, g, 0, nids.ProcessFrame)
	nids.Close()
	// Two directions, each cut at 100 bytes.
	if got > 200 {
		t.Errorf("delivered %d bytes, want <= 200 with cutoff 100", got)
	}
	// The baseline still READ all the bytes from the ring (the point of
	// Figure 8: user-level cutoffs do not save the copies).
	if c := nids.Counters(); c.RingBytesRead < 10000 {
		t.Errorf("ring bytes read = %d, expected full trace", c.RingBytesRead)
	}
}

func TestStream5ChunkedDelivery(t *testing.T) {
	var sizes []int
	s5 := NewStream5(0, 512, CutoffUnlimited, func(s *UserStream, b []byte) {
		sizes = append(sizes, len(b))
	})
	g := trace.NewGenerator(trace.GenConfig{
		Seed: 4, Flows: 5, Concurrency: 1, TCPFraction: 1,
		MinFlowBytes: 4000, MaxFlowBytes: 4001,
	})
	runThroughRing(t, g, 0, s5.ProcessFrame)
	s5.Close()
	full := 0
	for _, n := range sizes {
		if n == 512 {
			full++
		}
		if n > 512 {
			t.Fatalf("chunk of %d bytes exceeds flush point", n)
		}
	}
	if full == 0 {
		t.Error("no full flush-point chunks delivered")
	}
}

func TestExpireClosesIdleConnections(t *testing.T) {
	nids := NewLibnids(0, CutoffUnlimited, nil)
	key := pkt.FlowKey{
		SrcIP: pkt.MustAddr("9.9.9.9"), DstIP: pkt.MustAddr("8.8.8.8"),
		SrcPort: 5555, DstPort: 80, Proto: pkt.ProtoTCP,
	}
	syn := pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 1, Flags: pkt.FlagSYN})
	nids.ProcessFrame(pcapring.Frame{Data: syn, TS: 0, WireLen: len(syn)})
	nids.Expire(5e9) // before timeout
	if nids.Tracked() != 1 {
		t.Fatal("expired too early")
	}
	nids.Expire(20e9)
	if nids.Tracked() != 0 {
		t.Error("idle connection not expired")
	}
}

func TestYAFFlowExport(t *testing.T) {
	var exported []FlowRecord
	y := NewYAF(0, func(fr FlowRecord) { exported = append(exported, fr) })
	g := trace.NewGenerator(trace.GenConfig{
		Seed: 5, Flows: 10, Concurrency: 2, TCPFraction: 1,
		MinFlowBytes: 1000, MaxFlowBytes: 2000,
	})
	runThroughRing(t, g, YAFSnaplen, y.ProcessFrame)
	y.Close()
	if len(exported) != 10 {
		t.Errorf("exported %d flows, want 10", len(exported))
	}
	for _, fr := range exported {
		if fr.Pkts == 0 || fr.Bytes == 0 {
			t.Errorf("empty record %+v", fr)
		}
		if fr.End < fr.Start {
			t.Errorf("timestamps inverted: %+v", fr)
		}
	}
	// YAF reads only snaplen bytes per packet.
	if c := y.Counters(); c.RingBytesRead > c.Packets*YAFSnaplen {
		t.Errorf("ring bytes = %d for %d packets", c.RingBytesRead, c.Packets)
	}
}

func TestYAFCountsWireBytesNotCaptured(t *testing.T) {
	var rec FlowRecord
	y := NewYAF(0, func(fr FlowRecord) { rec = fr })
	key := pkt.FlowKey{
		SrcIP: pkt.MustAddr("3.3.3.3"), DstIP: pkt.MustAddr("4.4.4.4"),
		SrcPort: 1, DstPort: 80, Proto: pkt.ProtoTCP,
	}
	big := pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 1, Flags: pkt.FlagACK, Payload: make([]byte, 1400)})
	y.ProcessFrame(pcapring.Frame{Data: big[:YAFSnaplen], TS: 1, WireLen: len(big)})
	rst := pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 1401, Flags: pkt.FlagRST})
	y.ProcessFrame(pcapring.Frame{Data: rst, TS: 2, WireLen: len(rst)})
	if rec.Bytes != uint64(len(big)+len(rst)) {
		t.Errorf("flow bytes = %d, want wire total %d", rec.Bytes, len(big)+len(rst))
	}
}
