package bench

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

var (
	runnerOnce sync.Once
	runner     *Runner
	runnerErr  error
)

func quickRunner(t *testing.T) *Runner {
	runnerOnce.Do(func() {
		runner, runnerErr = NewRunner(QuickConfig())
	})
	if runnerErr != nil {
		t.Fatal(runnerErr)
	}
	return runner
}

func TestFigureTableFormat(t *testing.T) {
	f := &Figure{ID: "figX", Title: "demo", XLabel: "x", Series: []string{"a", "b"}}
	f.Add(2, map[string]float64{"a": 1.5, "b": 100})
	f.Add(1, map[string]float64{"a": 0.001})
	var buf bytes.Buffer
	f.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "demo") {
		t.Errorf("header missing:\n%s", out)
	}
	// Rows sorted by x; missing values dashed.
	if strings.Index(out, "0.001") > strings.Index(out, "1.500") {
		t.Errorf("rows not sorted by x:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("missing value not dashed:\n%s", out)
	}
	if v := f.Value("a", 2); v != 1.5 {
		t.Errorf("Value = %v", v)
	}
	if !math.IsNaN(f.Value("zz", 2)) {
		t.Error("unknown series should be NaN")
	}
}

func TestPatternsDeterministic(t *testing.T) {
	a, b := Patterns(50), Patterns(50)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatal("patterns not deterministic")
		}
		if len(a[i]) < 8 {
			t.Fatal("pattern too short")
		}
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-scale simulation; skipped in -short runs")
	}
	figs := quickRunner(t).Fig3()
	if len(figs) != 3 {
		t.Fatalf("fig3 parts = %d", len(figs))
	}
	loss := figs[0]
	// At 6G the baselines lose packets while Scap does not.
	if v := loss.Value(sLibnids, 6); v < 5 {
		t.Errorf("libnids loss at 6G = %.1f%%, want substantial", v)
	}
	if v := loss.Value(sScapNoFD, 6); v > 2 {
		t.Errorf("scap loss at 6G = %.1f%%, want ~0", v)
	}
	// FDIR reduces softirq load relative to plain Scap.
	irq := figs[2]
	if irq.Value(sScapFDIR, 6) >= irq.Value(sScapNoFD, 6) {
		t.Errorf("FDIR softirq %.2f not below plain %.2f",
			irq.Value(sScapFDIR, 6), irq.Value(sScapNoFD, 6))
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-scale simulation; skipped in -short runs")
	}
	figs := quickRunner(t).Fig4()
	loss := figs[0]
	// Scap delivers loss-free at 4G where the baselines drop heavily.
	if v := loss.Value(sScap, 4); v > 3 {
		t.Errorf("scap delivery loss at 4G = %.1f%%", v)
	}
	if v := loss.Value(sLibnids, 4); v < 10 {
		t.Errorf("libnids delivery loss at 4G = %.1f%%, want heavy", v)
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-scale simulation; skipped in -short runs")
	}
	figs := quickRunner(t).Fig6()
	matched := figs[1]
	// Full recall at the lowest rate; Scap retains a lead at 6G.
	low := matched.Xs()[0]
	if v := matched.Value(sScap, low); v < 95 {
		t.Errorf("scap recall at %.2fG = %.1f%%, want ~100", low, v)
	}
	if matched.Value(sScap, 6) <= matched.Value(sLibnids, 6) {
		t.Errorf("scap recall at 6G (%.1f%%) not above libnids (%.1f%%)",
			matched.Value(sScap, 6), matched.Value(sLibnids, 6))
	}
	// Scap loses far fewer streams than packets (the §6.5.1 claim).
	lossF := figs[0]
	lostF := figs[2]
	if lossScap := lossF.Value(sScap, 6); lossScap > 20 {
		if lostF.Value(sScap, 6) > lossScap/1.5 {
			t.Errorf("scap at 6G: %.1f%% packets lost but %.1f%% streams lost — expected far fewer streams",
				lossScap, lostF.Value(sScap, 6))
		}
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-scale simulation; skipped in -short runs")
	}
	figs := quickRunner(t).Fig10()
	maxRate := figs[1]
	xs := maxRate.Xs()
	first := maxRate.Value("Max loss-free rate", xs[0])
	last := maxRate.Value("Max loss-free rate", xs[len(xs)-1])
	if last < 2*first {
		t.Errorf("multicore speedup %.1f -> %.1f Gbit/s, want at least 2x", first, last)
	}
	// Monotone non-decreasing.
	prev := -1.0
	for _, x := range xs {
		v := maxRate.Value("Max loss-free rate", x)
		if v < prev {
			t.Errorf("max loss-free rate decreased at %v workers: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestFig11MatchesQueueing(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-scale simulation; skipped in -short runs")
	}
	fig := Fig11()
	if v := fig.Value("rho=0.1", 10); v > 1e-8 {
		t.Errorf("rho=0.1 N=10 loss = %v", v)
	}
	if v := fig.Value("rho=0.9", 20); v < 1e-3 {
		t.Errorf("rho=0.9 N=20 loss = %v, should still be visible", v)
	}
}

func TestFig12Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-scale simulation; skipped in -short runs")
	}
	fig := Fig12()
	for _, x := range fig.Xs() {
		if fig.Value("High-priority", x) > fig.Value("Medium-priority", x)+1e-18 {
			t.Errorf("priority inversion at N=%v", x)
		}
	}
}

func TestByID(t *testing.T) {
	r := quickRunner(t)
	if _, err := r.ByID("11"); err != nil {
		t.Error(err)
	}
	if _, err := r.ByID("fig12"); err != nil {
		t.Error(err)
	}
	if _, err := r.ByID("99"); err == nil {
		t.Error("unknown figure accepted")
	}
}
