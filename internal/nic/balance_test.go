package nic

import (
	"net/netip"
	"testing"

	"scap/internal/pkt"
)

func synFrame(k pkt.FlowKey) []byte {
	return pkt.BuildTCP(pkt.TCPSpec{Key: k, Seq: 1, Flags: pkt.FlagSYN})
}

func ackFrame(k pkt.FlowKey, seq uint32) []byte {
	return pkt.BuildTCP(pkt.TCPSpec{Key: k, Seq: seq, Flags: pkt.FlagACK, Payload: []byte("data")})
}

func finFrame(k pkt.FlowKey) []byte {
	return pkt.BuildTCP(pkt.TCPSpec{Key: k, Seq: 99, Flags: pkt.FlagFIN | pkt.FlagACK})
}

func flowN(i int) pkt.FlowKey {
	return pkt.FlowKey{
		SrcIP:   netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1}),
		DstIP:   netip.AddrFrom4([4]byte{192, 168, byte(i), 2}),
		SrcPort: uint16(10000 + i), DstPort: 80, Proto: pkt.ProtoTCP,
	}
}

func TestBalancerSpreadsHotQueue(t *testing.T) {
	n := New(Config{Queues: 4, DynamicBalance: true})
	// Find many flows that RSS maps to the same queue, then offer them:
	// the balancer must redirect the overflow elsewhere.
	hot := -1
	var offered, stayed int
	for i := 0; i < 4000 && offered < 400; i++ {
		k := flowN(i)
		q := n.QueueFor(k)
		if hot < 0 {
			hot = q
		}
		if q != hot {
			continue
		}
		offered++
		got := n.Receive(synFrame(k), int64(i)*1000)
		if got < 0 {
			t.Fatalf("SYN dropped for %v", k)
		}
		if got == hot {
			stayed++
		}
	}
	if offered < 100 {
		t.Fatalf("could not build a hot queue (offered %d)", offered)
	}
	if stayed > offered/2 {
		t.Errorf("%d of %d hot-queue flows stayed — balancer inactive", stayed, offered)
	}
	if n.lb.Redirects == 0 {
		t.Error("no redirects recorded")
	}
}

func TestBalancerKeepsConnectionTogether(t *testing.T) {
	n := New(Config{Queues: 4, DynamicBalance: true})
	// Preload imbalance on one queue.
	hotKey := flowN(0)
	hot := n.QueueFor(hotKey)
	loaded := 0
	for i := 0; i < 4000 && loaded < 100; i++ {
		k := flowN(i)
		if n.QueueFor(k) != hot {
			continue
		}
		n.Receive(synFrame(k), int64(i))
		loaded++
	}
	// A fresh flow destined for the hot queue gets redirected; all of its
	// later packets — both directions — must follow it.
	var fresh pkt.FlowKey
	for i := 5000; ; i++ {
		if k := flowN(i); n.QueueFor(k) == hot {
			fresh = k
			break
		}
	}
	q0 := n.Receive(synFrame(fresh), 1e6)
	if q0 < 0 {
		t.Fatal("SYN dropped")
	}
	if q1 := n.Receive(ackFrame(fresh, 2), 1e6+1); q1 != q0 {
		t.Errorf("data packet on queue %d, SYN went to %d", q1, q0)
	}
	if q2 := n.Receive(ackFrame(fresh.Reverse(), 500), 1e6+2); q2 != q0 {
		t.Errorf("reverse packet on queue %d, want %d", q2, q0)
	}
	// First FIN must not break the assignment.
	if q3 := n.Receive(finFrame(fresh), 1e6+3); q3 != q0 {
		t.Errorf("first FIN on queue %d, want %d", q3, q0)
	}
	if q4 := n.Receive(ackFrame(fresh.Reverse(), 600), 1e6+4); q4 != q0 {
		t.Errorf("post-FIN reverse data on queue %d, want %d", q4, q0)
	}
	// Second FIN releases the redirect.
	n.Receive(finFrame(fresh.Reverse()), 1e6+5)
	if _, ok := n.lb.flows[canonOf(fresh)]; ok {
		t.Error("connection still tracked after both FINs")
	}
}

func canonOf(k pkt.FlowKey) pkt.FlowKey {
	c, _ := k.Canonical()
	return c
}

func TestBalancerRSTReleasesImmediately(t *testing.T) {
	n := New(Config{Queues: 2, DynamicBalance: true})
	k := flowN(1)
	n.Receive(synFrame(k), 1)
	rst := pkt.BuildTCP(pkt.TCPSpec{Key: k, Seq: 5, Flags: pkt.FlagRST})
	n.Receive(rst, 2)
	if _, ok := n.lb.flows[canonOf(k)]; ok {
		t.Error("connection still tracked after RST")
	}
}

func TestBalancerDisabledSingleQueue(t *testing.T) {
	n := New(Config{Queues: 1, DynamicBalance: true})
	if n.lb != nil {
		t.Error("balancer active with one queue")
	}
}
