package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-program call graph the cross-function
// analyzers (ownership, hotpathblock) walk. It works because the loader
// type-checks every module package against the same *types.Package
// objects: a method of internal/event seen from internal/core resolves to
// the identical *types.Func, so the graph can key nodes on object
// identity across package boundaries.
//
// The graph is intentionally conservative where Go is dynamic:
//
//   - Interface method calls and calls through stored function values
//     resolve to no declaration and produce no edge.
//   - "go f(...)" produces an edgeGo, which role propagation and the
//     hot-path walk do not follow: the spawned goroutine runs under its
//     own role (it needs its own //scap:goroutine marker) and its
//     blocking does not block the spawner.
//   - Taking a function's value without calling it ("mux.HandleFunc(s.h)")
//     produces an edgeRef, also not followed: the eventual caller is
//     unknown, so contracts on the referenced function are checked at its
//     own entry markers instead.
//   - A function literal's body is attributed to its enclosing declared
//     function, except literals launched directly with "go", whose bodies
//     belong to the new goroutine and are skipped.

type edgeKind int

const (
	edgeCall edgeKind = iota // plain or deferred call
	edgeGo                   // go statement: new goroutine
	edgeRef                  // function value referenced, not called
)

// callEdge is one resolved caller->callee relationship.
type callEdge struct {
	callee *types.Func
	pos    token.Pos
	kind   edgeKind
}

// funcNode is one declared function or method of the program.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	out  []callEdge
}

// Program is a set of packages analyzed together by the whole-program
// analyzers, with a lazily built call graph over their declared functions.
type Program struct {
	Pkgs []*Package

	nodes map[*types.Func]*funcNode
	order []*funcNode // declaration order: packages, then files, then decls
}

// NewProgram groups pkgs for whole-program analysis.
func NewProgram(pkgs []*Package) *Program {
	return &Program{Pkgs: pkgs}
}

// node returns the graph node for fn, or nil if fn is not declared in the
// program (stdlib, interface methods).
func (prog *Program) node(fn *types.Func) *funcNode {
	prog.buildGraph()
	return prog.nodes[fn]
}

// funcs returns every declared function in deterministic order.
func (prog *Program) funcs() []*funcNode {
	prog.buildGraph()
	return prog.order
}

func (prog *Program) buildGraph() {
	if prog.nodes != nil {
		return
	}
	prog.nodes = make(map[*types.Func]*funcNode)
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok || fn == nil {
					continue // type error; degrade gracefully
				}
				n := &funcNode{fn: fn, decl: fd, pkg: p}
				prog.nodes[fn] = n
				prog.order = append(prog.order, n)
			}
		}
	}
	for _, n := range prog.order {
		n.out = edgesOf(n)
	}
}

// edgesOf collects n's outgoing edges in source order.
func edgesOf(n *funcNode) []callEdge {
	if n.decl.Body == nil {
		return nil
	}
	info := n.pkg.Info

	// Pre-pass: idents consumed as call targets (so the main pass does not
	// double-count them as references), calls that are go statements, and
	// function literals launched directly with go.
	calleeIdent := make(map[*ast.Ident]bool)
	goCall := make(map[*ast.CallExpr]bool)
	goLit := make(map[*ast.FuncLit]bool)
	ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.GoStmt:
			goCall[x.Call] = true
			if fl, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
				goLit[fl] = true
			}
		case *ast.CallExpr:
			switch f := unparen(x.Fun).(type) {
			case *ast.Ident:
				calleeIdent[f] = true
			case *ast.SelectorExpr:
				calleeIdent[f.Sel] = true
			}
		}
		return true
	})

	var out []callEdge
	ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			if goLit[x] {
				return false // body runs on the spawned goroutine
			}
		case *ast.CallExpr:
			if callee := calleeOf(info, x.Fun); callee != nil {
				kind := edgeCall
				if goCall[x] {
					kind = edgeGo
				}
				out = append(out, callEdge{callee: callee, pos: x.Lparen, kind: kind})
			}
		case *ast.Ident:
			if calleeIdent[x] {
				return true
			}
			if fn, ok := info.Uses[x].(*types.Func); ok {
				out = append(out, callEdge{callee: fn, pos: x.Pos(), kind: edgeRef})
			}
		}
		return true
	})
	return out
}

// calleeOf resolves a call's target to the declared function it names, or
// nil for dynamic calls (interface methods, function values, conversions).
func calleeOf(info *types.Info, fun ast.Expr) *types.Func {
	switch e := unparen(fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// shortFuncName renders fn for diagnostics: "Type.Method" for methods,
// "Name" for plain functions.
func shortFuncName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// --- goroutine roles ---

// roleEntry is one //scap:goroutine-marked function.
type roleEntry struct {
	role string
	node *funcNode
}

// roleSet maps a role name to the predecessor function through which the
// role first reached this node (nil predecessor for the entry itself).
type roleSet map[string]*types.Func

// roleGraph is the result of propagating goroutine roles over call edges.
type roleGraph struct {
	entries []roleEntry
	roles   map[string]bool
	reach   map[*types.Func]roleSet
}

// propagateRoles finds every //scap:goroutine entry point and walks call
// edges (not go statements, not references) breadth-first from each,
// recording which roles reach which functions and through whom. Entry
// points missing a role name are reported via the returned diagnostics.
func (prog *Program) propagateRoles() (*roleGraph, []Diagnostic) {
	g := &roleGraph{
		roles: make(map[string]bool),
		reach: make(map[*types.Func]roleSet),
	}
	var diags []Diagnostic
	for _, n := range prog.funcs() {
		args, ok := markerArgs(n.decl.Doc, goroutineMarker)
		if !ok {
			continue
		}
		if len(args) == 0 {
			diags = append(diags, Diagnostic{
				Pos:      n.pkg.Fset.Position(n.decl.Pos()),
				Analyzer: "ownership",
				Message:  "//scap:goroutine is missing its role name",
			})
			continue
		}
		g.entries = append(g.entries, roleEntry{role: args[0], node: n})
		g.roles[args[0]] = true
	}
	// prog.funcs() is already deterministic; BFS per entry in that order.
	for _, e := range g.entries {
		g.bfs(prog, e)
	}
	return g, diags
}

func (g *roleGraph) bfs(prog *Program, e roleEntry) {
	start := e.node.fn
	if rs := g.reach[start]; rs != nil {
		if _, ok := rs[e.role]; ok {
			// Another entry of the same role already covered this
			// function and, transitively, everything below it.
			return
		}
	}
	g.mark(start, e.role, nil)
	queue := []*funcNode{e.node}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, edge := range n.out {
			if edge.kind != edgeCall {
				continue
			}
			next := prog.node(edge.callee)
			if next == nil {
				continue
			}
			if rs := g.reach[next.fn]; rs != nil {
				if _, ok := rs[e.role]; ok {
					continue
				}
			}
			g.mark(next.fn, e.role, n.fn)
			queue = append(queue, next)
		}
	}
}

func (g *roleGraph) mark(fn *types.Func, role string, pred *types.Func) {
	rs := g.reach[fn]
	if rs == nil {
		rs = make(roleSet)
		g.reach[fn] = rs
	}
	rs[role] = pred
}

// chain reconstructs the call path "entry → ... → fn" by which role
// reached fn, for diagnostics. Long chains keep both ends.
func (g *roleGraph) chain(fn *types.Func, role string) string {
	var names []string
	for cur := fn; cur != nil; {
		names = append(names, shortFuncName(cur))
		rs := g.reach[cur]
		if rs == nil {
			break
		}
		pred, ok := rs[role]
		if !ok || pred == nil {
			break
		}
		cur = pred
		if len(names) > 32 {
			break // cycle guard; the graph has recursion
		}
	}
	// names is fn-first; reverse to entry-first.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	if len(names) > 8 {
		names = append(append([]string{}, names[:4]...), append([]string{"…"}, names[len(names)-3:]...)...)
	}
	return strings.Join(names, " → ")
}

// sortedRoles returns the roles of rs in stable order.
func (rs roleSet) sorted() []string {
	out := make([]string, 0, len(rs))
	for r := range rs {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
