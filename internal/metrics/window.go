package metrics

import "sync"

// Window turns a registry's monotone snapshots into windowed rates: each
// Collect diffs the current snapshot against the previous one and divides by
// the elapsed wall time, making quantities like PPL-dropped packets per
// second first-class instead of leaving the time dimension to the consumer.
// The window length is simply the time between Collect calls, so a poller
// (the /metrics handler, scaptop) sets its own resolution.
type Window struct {
	reg *Registry

	mu   sync.Mutex
	prev Snapshot
	ok   bool
}

// NewWindow creates a rate window over reg. The first Collect has no
// predecessor and reports zero rates.
func NewWindow(reg *Registry) *Window { return &Window{reg: reg} }

// Collect snapshots the registry and returns the payload with per-counter
// rates (and per-core rates) computed over the time since the previous
// Collect. Safe for concurrent use; concurrent callers serialize and each
// diff is against the immediately preceding snapshot.
func (w *Window) Collect() Payload {
	w.mu.Lock()
	defer w.mu.Unlock()
	cur := w.reg.Snapshot()
	p := Payload{
		TimeUnixNano: cur.TimeUnixNano,
		Cores:        w.reg.Cores(),
		Gauges:       cur.Gauges,
		Histograms:   cur.Histograms,
		Events:       cur.Events,
	}
	var dt float64 // seconds
	if w.ok && cur.TimeUnixNano > w.prev.TimeUnixNano {
		dt = float64(cur.TimeUnixNano-w.prev.TimeUnixNano) / 1e9
		p.WindowSeconds = dt
	}
	for i := range cur.Counters {
		c := CounterPayload{CounterSnap: cur.Counters[i]}
		if dt > 0 && i < len(w.prev.Counters) && w.prev.Counters[i].Name == c.Name {
			prev := &w.prev.Counters[i]
			c.Rate = rate(c.Total, prev.Total, dt)
			if len(c.PerCore) > 0 {
				c.PerCoreRate = make([]float64, len(c.PerCore))
				for core, v := range c.PerCore {
					var pv uint64
					if core < len(prev.PerCore) {
						pv = prev.PerCore[core]
					}
					c.PerCoreRate[core] = rate(v, pv, dt)
				}
			}
		}
		p.Counters = append(p.Counters, c)
	}
	for i := range p.Counters {
		if p.Counters[i].Family == "drops" {
			p.Drops = append(p.Drops, p.Counters[i])
		}
	}
	w.prev = cur
	w.ok = true
	return p
}

// rate is the per-second delta, clamped at zero so a counter reset (restart)
// never yields a huge negative rate.
func rate(cur, prev uint64, dt float64) float64 {
	if cur < prev {
		return 0
	}
	return float64(cur-prev) / dt
}
