GO ?= go

.PHONY: build test test-short race vet lint fmt-check bench-quick serve-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -short -race ./...

vet:
	$(GO) vet ./...

# lint runs scaplint, the repo's own static-analysis suite (hot-path
# allocation, hot-path locking, snapshot-getter, and lock-discipline
# invariants).
lint:
	$(GO) run ./cmd/scaplint ./...

# bench-quick compiles and runs every benchmark for a single iteration —
# a smoke test that the bench harnesses stay buildable and terminate, not
# a measurement.
bench-quick:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# serve-smoke replays a small trace through a socket with the debug server
# enabled, scrapes /metrics over HTTP, and asserts nonzero packets_total —
# the end-to-end proof that the observability path works.
serve-smoke:
	$(GO) run ./cmd/scaptop -smoke

fmt-check:
	@out=$$(gofmt -l . | grep -v '^testdata/' || true); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# check is the full CI gate.
check: build vet lint fmt-check race serve-smoke
