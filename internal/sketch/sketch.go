// Package sketch implements the per-core priority-aware traffic summary
// that fronts the flow table: a count-min sketch of per-flow byte volume,
// per-priority byte/packet accumulators, and a top-k heavy-flow tracker.
// Together they let the engine answer "how big is this flow and does it
// still deserve a stream_t record?" in O(1) memory for flows the cutoff has
// already disqualified — beyond-cutoff and filter-rejected flows are
// handled entirely from the sketch (PSketch's priority-aware sketching
// argument applied to Scap's §5.5 subzero-copy pipeline: the sketch both
// suppresses software state and nominates FDIR drop-filter candidates).
//
// A Sketch is owned by one engine goroutine; the owner publishes immutable
// snapshots for cross-goroutine readers (debug endpoints, gauges).
package sketch

import (
	"math/bits"
	"sync/atomic"

	"scap/internal/pkt"
)

// Defaults sized for ~1M-flow workloads: 4 rows × 32Ki counters × 8 B =
// 1 MiB per core, collision probability per row ~ flows/width.
const (
	DefaultWidth = 1 << 15
	DefaultDepth = 4
	DefaultTopK  = 64
)

// Config sizes a Sketch.
type Config struct {
	// Width is the number of counters per row (rounded up to a power of
	// two). Depth is the number of independent rows; estimates take the
	// minimum across rows, so error is one-sided (never underestimates).
	Width int
	Depth int
	// TopK bounds the heavy-flow tracker.
	TopK int
	// Priorities is the number of PPL priority levels accounted.
	Priorities int
}

// Heavy is one tracked heavy flow. Entries are engine-owned; FDIR marks
// that a NIC drop-filter pair has been installed for this flow (so the
// install path doesn't repeat it).
type Heavy struct {
	Hash     uint64
	Key      pkt.FlowKey
	Bytes    uint64
	Priority int
	FDIR     bool
}

// Snapshot is an immutable copy of the sketch's aggregates, published by
// the owning engine and safe to read from any goroutine.
type Snapshot struct {
	ObservedPkts  uint64   `json:"observed_pkts"`
	ObservedBytes uint64   `json:"observed_bytes"`
	PrioBytes     []uint64 `json:"prio_bytes"`
	PrioPkts      []uint64 `json:"prio_pkts"`
	Heavies       []Heavy  `json:"heavies"`
}

// Sketch is one core's traffic summary. Only the owning engine goroutine
// may call Observe/Estimate/heavy accessors; any goroutine may call
// Snapshot.
//
//scap:owner engine
type Sketch struct {
	mask  uint64
	depth int
	rows  [][]uint64

	prioBytes []uint64
	prioPkts  []uint64

	observedPkts  uint64
	observedBytes uint64

	// heavy is a small open-addressed table (2×TopK slots) keyed by flow
	// hash; topK bounds the live entries. heavyMin gates insertion so the
	// tracker only sees flows already past the smallest configured cutoff.
	heavy     []Heavy
	heavyMask uint64
	heavyLive int
	topK      int
	heavyMin  uint64

	snap atomic.Pointer[Snapshot]
}

// New creates a sketch. heavyMin starts disabled (nothing is heavy) until
// the engine calls SetHeavyMin with its resolved cutoff floor.
func New(cfg Config) *Sketch {
	if cfg.Width <= 0 {
		cfg.Width = DefaultWidth
	}
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultDepth
	}
	if cfg.TopK <= 0 {
		cfg.TopK = DefaultTopK
	}
	if cfg.Priorities <= 0 {
		cfg.Priorities = 1
	}
	width := 1 << bits.Len(uint(cfg.Width-1)) // round up to a power of two
	sk := &Sketch{
		mask:      uint64(width - 1),
		depth:     cfg.Depth,
		rows:      make([][]uint64, cfg.Depth),
		prioBytes: make([]uint64, cfg.Priorities),
		prioPkts:  make([]uint64, cfg.Priorities),
		heavy:     make([]Heavy, 2*nextPow2(cfg.TopK)),
		topK:      cfg.TopK,
		heavyMin:  ^uint64(0),
	}
	sk.heavyMask = uint64(len(sk.heavy) - 1)
	for i := range sk.rows {
		sk.rows[i] = make([]uint64, width)
	}
	sk.snap.Store(&Snapshot{
		PrioBytes: make([]uint64, cfg.Priorities),
		PrioPkts:  make([]uint64, cfg.Priorities),
	})
	return sk
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// SetHeavyMin sets the byte volume at which a flow becomes a heavy-flow
// candidate — the engine's smallest configured cutoff, so every flow that
// could possibly be suppressed is tracked once it crosses the line.
func (sk *Sketch) SetHeavyMin(min uint64) { sk.heavyMin = min }

// rowIdx derives the depth row indices from one 64-bit hash
// (Kirsch-Mitzenmacher: idx_i = h1 + i*h2 over independent halves).
//
//scap:hotpath
func (sk *Sketch) rowIdx(h uint64, i int) uint64 {
	h1 := h & 0xffffffff
	h2 := (h >> 32) | 1
	return (h1 + uint64(i)*h2) & sk.mask
}

// Observe accounts one packet of n payload bytes for the flow hashed to h
// and returns the flow's updated byte estimate. The estimate is one-sided:
// it never undercounts the flow's observed payload (hash collisions only
// inflate it), which is exactly the safe direction for cutoff suppression —
// a flow is only suppressed when the engine previously saw (someone reach)
// the cutoff on those counters.
//
//scap:hotpath
func (sk *Sketch) Observe(h uint64, key pkt.FlowKey, prio, n int) uint64 {
	sk.observedPkts++
	sk.observedBytes += uint64(n)
	if prio >= 0 && prio < len(sk.prioBytes) {
		sk.prioBytes[prio] += uint64(n)
		sk.prioPkts[prio]++
	}
	est := ^uint64(0)
	for i := 0; i < sk.depth; i++ {
		c := &sk.rows[i][sk.rowIdx(h, i)]
		*c += uint64(n)
		if *c < est {
			est = *c
		}
	}
	if est >= sk.heavyMin {
		sk.noteHeavy(h, key, prio, est)
	}
	return est
}

// Estimate returns the flow's current byte estimate without updating it.
//
//scap:hotpath
func (sk *Sketch) Estimate(h uint64) uint64 {
	est := ^uint64(0)
	for i := 0; i < sk.depth; i++ {
		if c := sk.rows[i][sk.rowIdx(h, i)]; c < est {
			est = c
		}
	}
	return est
}

// noteHeavy upserts a heavy-flow entry. The table is probed linearly from
// the hash position; when full past topK, the smallest entry along the
// probe window is displaced if the candidate is larger — a bounded-effort
// top-k that favors exactly the flows big enough to matter for FDIR.
func (sk *Sketch) noteHeavy(h uint64, key pkt.FlowKey, prio int, est uint64) {
	i := h & sk.heavyMask
	var minIdx uint64
	minBytes := ^uint64(0)
	for probe := 0; probe < 8; probe++ {
		e := &sk.heavy[i]
		if e.Bytes == 0 {
			if sk.heavyLive >= sk.topK {
				break // at capacity: fall through to displacement
			}
			*e = Heavy{Hash: h, Key: key, Bytes: est, Priority: prio}
			sk.heavyLive++
			return
		}
		if e.Hash == h && e.Key == key {
			e.Bytes = est
			e.Priority = prio
			return
		}
		if e.Bytes < minBytes {
			minBytes = e.Bytes
			minIdx = i
		}
		i = (i + 1) & sk.heavyMask
	}
	if est > minBytes {
		sk.heavy[minIdx] = Heavy{Hash: h, Key: key, Bytes: est, Priority: prio}
	}
}

// ForEachHeavy calls fn for every live heavy entry. fn may mutate the entry
// (the FDIR install path marks entries it has handled). Engine-only.
func (sk *Sketch) ForEachHeavy(fn func(*Heavy)) {
	for i := range sk.heavy {
		if sk.heavy[i].Bytes != 0 {
			fn(&sk.heavy[i])
		}
	}
}

// MarkFDIR marks the heavy entry for h as having NIC filters installed and
// reports whether an entry was found (the install path uses the flag to
// avoid repeating the install).
func (sk *Sketch) MarkFDIR(h uint64) bool {
	i := h & sk.heavyMask
	for probe := 0; probe < 8; probe++ {
		e := &sk.heavy[i]
		if e.Bytes != 0 && e.Hash == h {
			e.FDIR = true
			return true
		}
		i = (i + 1) & sk.heavyMask
	}
	return false
}

// ClearFDIR unmarks the heavy entry for h (called when the NIC filter pair
// installed for it expires, so a still-heavy flow can be re-nominated).
func (sk *Sketch) ClearFDIR(h uint64) {
	i := h & sk.heavyMask
	for probe := 0; probe < 8; probe++ {
		e := &sk.heavy[i]
		if e.Bytes != 0 && e.Hash == h {
			e.FDIR = false
			return
		}
		i = (i + 1) & sk.heavyMask
	}
}

// HeavyCount returns the number of live heavy entries. Engine-only.
func (sk *Sketch) HeavyCount() int {
	n := 0
	for i := range sk.heavy {
		if sk.heavy[i].Bytes != 0 {
			n++
		}
	}
	return n
}

// ObservedPkts and ObservedBytes return the totals seen. Engine-only;
// cross-goroutine readers use Snapshot.
func (sk *Sketch) ObservedPkts() uint64 { return sk.observedPkts }

// ObservedBytes returns total payload bytes observed. Engine-only.
func (sk *Sketch) ObservedBytes() uint64 { return sk.observedBytes }

// Publish stores a fresh immutable snapshot for cross-goroutine readers.
// The owning engine calls it from its timer path, so readers see aggregates
// at timer granularity without touching hot-path state.
func (sk *Sketch) Publish() {
	s := &Snapshot{
		ObservedPkts:  sk.observedPkts,
		ObservedBytes: sk.observedBytes,
		PrioBytes:     append([]uint64(nil), sk.prioBytes...),
		PrioPkts:      append([]uint64(nil), sk.prioPkts...),
	}
	for i := range sk.heavy {
		if sk.heavy[i].Bytes != 0 {
			s.Heavies = append(s.Heavies, sk.heavy[i])
		}
	}
	sk.snap.Store(s)
}

// Snapshot returns the most recently published snapshot.
//
//scap:anyrole immutable snapshot behind an atomic pointer
func (sk *Sketch) Snapshot() *Snapshot { return sk.snap.Load() }
