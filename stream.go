package scap

import (
	"time"

	"scap/internal/core"
	"scap/internal/event"
	"scap/internal/flowtab"
	"scap/internal/pkt"
	"scap/internal/reassembly"
)

// Status is a stream's lifecycle state (sd->status).
type Status = flowtab.Status

// Stream statuses.
const (
	StatusActive   = flowtab.StatusActive
	StatusClosed   = flowtab.StatusClosed
	StatusTimedOut = flowtab.StatusTimedOut
	StatusCutoff   = flowtab.StatusCutoff
	StatusEvicted  = flowtab.StatusEvicted
)

// ErrorFlags report reassembly anomalies (sd->error).
type ErrorFlags = reassembly.Flags

// Error flag bits.
const (
	ErrHole           = reassembly.FlagHole
	ErrBufferOverflow = reassembly.FlagBufferOverflow
	ErrStrictDrop     = reassembly.FlagStrictDrop
	ErrBadHandshake   = reassembly.FlagBadHandshake
)

// FlowKey identifies a flow direction (addresses, ports, protocol).
type FlowKey = pkt.FlowKey

// StreamStats are per-stream counters (sd->stats).
type StreamStats = flowtab.Stats

// PacketInfo is one captured packet of a stream, for packet-based
// processing alongside stream-based processing (scap_next_stream_packet).
type PacketInfo struct {
	// Timestamp is the capture time in virtual nanoseconds.
	Timestamp int64
	// WireLen / CapLen are the original and captured lengths.
	WireLen int
	CapLen  int
	// Seq and Flags are the TCP header fields (zero for UDP).
	Seq   uint32
	Flags uint8
	// Payload is the packet's payload bytes within the current chunk; nil
	// when the bytes are not present (duplicate or reordered data).
	Payload []byte
}

// Stream is the descriptor passed to every callback (stream_t *sd). It is
// a consistent snapshot taken when the event was generated — the engine
// keeps mutating the live record, exactly why the paper maintains a second
// stream_t instance for user level (§5.4). Control methods (SetCutoff,
// SetPriority, Discard, KeepChunk) route back to the owning engine and are
// applied asynchronously, validated against the stream's identity.
//
// A Stream (and its Data slice) is valid only for the duration of the
// callback.
type Stream struct {
	info flowtab.Info

	// Data is the current chunk for data events (sd->data); nil for
	// creation/termination events. It is a zero-copy view into the chunk's
	// arena block — the same memory the kernel path wrote the payload into —
	// and the block is recycled after the callback returns, so callers must
	// copy anything they need to retain (or use KeepChunk to have the block
	// carried into the next delivery).
	Data []byte
	// HoleBefore reports that fast-mode reassembly skipped a sequence
	// hole immediately before this chunk.
	HoleBefore bool
	// Last reports that this is the stream's final chunk.
	Last bool

	pkts    []event.PacketRecord
	pktIdx  int
	handle  *Handle
	engine  *core.Engine
	raw     *flowtab.Stream
	keep    bool
	procCum time.Duration
}

// ID returns the socket-wide unique stream identifier.
func (sd *Stream) ID() uint64 { return sd.info.ID }

// Key returns the stream's 5-tuple (source = the direction's sender).
func (sd *Stream) Key() FlowKey { return sd.info.Key }

// Dir reports whether this direction is client->server or the reverse.
func (sd *Stream) Dir() Direction { return Direction(sd.info.Dir) }

// Status returns the lifecycle state.
func (sd *Stream) Status() Status { return sd.info.Status }

// Error returns the reassembly anomaly flags.
func (sd *Stream) Error() ErrorFlags { return sd.info.Error }

// Stats returns the per-stream counters.
func (sd *Stream) Stats() StreamStats { return sd.info.Stats }

// Cutoff returns the stream's effective cutoff.
func (sd *Stream) Cutoff() int64 { return sd.info.Cutoff }

// Priority returns the stream's PPL priority.
func (sd *Stream) Priority() int { return sd.info.Priority }

// Chunks returns how many data chunks have been delivered so far
// (sd->chunks).
func (sd *Stream) Chunks() uint64 { return sd.info.Chunks }

// OppositeID returns the reverse direction's stream ID (0 if untracked).
func (sd *Stream) OppositeID() uint64 { return sd.info.OppositeID }

// HWFilterInstalled reports that an FDIR drop-filter pair currently
// suppresses this stream's data packets at the NIC.
func (sd *Stream) HWFilterInstalled() bool { return sd.info.HWFilter }

// EstimatedBytes returns the stream's best flow-size estimate: the payload
// counter or, when the NIC dropped the flow's middle (subzero copy), the
// span implied by the FIN sequence number (paper §5.5).
func (sd *Stream) EstimatedBytes() uint64 { return sd.info.EstimatedBytes }

// ProcessingTime returns the cumulative wall-clock time this worker has
// spent in callbacks for this stream (sd->processing_time), letting
// applications spot streams that trigger algorithmic-complexity attacks.
func (sd *Stream) ProcessingTime() time.Duration { return sd.procCum }

// NextPacket returns the next per-packet record of the current chunk, or
// nil when exhausted. The socket must have been created with NeedPkts.
func (sd *Stream) NextPacket() *PacketInfo {
	for sd.pktIdx < len(sd.pkts) {
		rec := sd.pkts[sd.pktIdx]
		sd.pktIdx++
		pi := &PacketInfo{
			Timestamp: rec.TS,
			WireLen:   rec.WireLen,
			CapLen:    rec.CapLen,
			Seq:       rec.Seq,
			Flags:     rec.Flags,
		}
		if rec.Len > 0 && int(rec.Off+rec.Len) <= len(sd.Data) {
			pi.Payload = sd.Data[rec.Off : rec.Off+rec.Len]
		}
		return pi
	}
	return nil
}

// SetCutoff changes this stream's cutoff (scap_set_stream_cutoff).
func (sd *Stream) SetCutoff(cutoff int64) {
	sd.control(core.Ctrl{Op: core.OpSetCutoff, Value: cutoff})
}

// SetPriority changes the connection's PPL priority for both directions
// (scap_set_stream_priority).
func (sd *Stream) SetPriority(priority int) {
	sd.control(core.Ctrl{Op: core.OpSetPriority, Value: int64(priority)})
}

// Discard stops all data collection for this stream; statistics continue
// (scap_discard_stream).
func (sd *Stream) Discard() {
	sd.control(core.Ctrl{Op: core.OpDiscard})
}

// SetChunkSize / SetOverlapSize / SetFlushTimeout / SetInactivityTimeout
// update per-stream parameters (scap_set_stream_parameter).
func (sd *Stream) SetChunkSize(n int) {
	sd.control(core.Ctrl{Op: core.OpSetParam, Param: core.ParamChunkSize, Value: int64(n)})
}

// SetOverlapSize updates the per-stream chunk overlap.
func (sd *Stream) SetOverlapSize(n int) {
	sd.control(core.Ctrl{Op: core.OpSetParam, Param: core.ParamOverlapSize, Value: int64(n)})
}

// SetFlushTimeout updates the per-stream flush timeout (ns).
func (sd *Stream) SetFlushTimeout(ns int64) {
	sd.control(core.Ctrl{Op: core.OpSetParam, Param: core.ParamFlushTimeout, Value: ns})
}

// SetInactivityTimeout updates the per-stream inactivity timeout (ns).
func (sd *Stream) SetInactivityTimeout(ns int64) {
	sd.control(core.Ctrl{Op: core.OpSetParam, Param: core.ParamInactivityTimeout, Value: ns})
}

// KeepChunk keeps the current chunk in memory so the next data event
// delivers it merged with the following data (scap_keep_stream_chunk).
// Only meaningful inside a data callback. The chunk's arena block (and its
// stream-memory charge) is retained by the worker instead of being
// recycled: the next chunk's bytes are appended into the kept block's free
// room — blocks carry headroom above the chunk size for exactly this — and
// the merge moves to the heap only if it outgrows the block.
func (sd *Stream) KeepChunk() { sd.keep = true }

func (sd *Stream) control(c core.Ctrl) {
	if sd.engine == nil || sd.raw == nil {
		return
	}
	c.Stream = sd.raw
	c.ID = sd.info.ID
	sd.engine.Control(c)
}
